package pipeline

import (
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/rewrite"
	"autopart/internal/solver"
)

// The standard passes, registered in DefaultOrder. Each is a thin
// adapter from the Session to the phase implementation packages; the
// only pipeline-level logic is the solve pass's fallback from relaxed
// to unrelaxed systems (§5.1: relaxation is an optimization, never a
// reason to fail a compile that would otherwise succeed).
func init() {
	Register(NewPass("parse", runParse))
	Register(NewPass("check", runCheck))
	Register(NewPass("normalize", runNormalize))
	Register(NewPass("infer", runInfer))
	Register(NewPass("relax", runRelax))
	Register(NewPass("solve", runSolve))
	Register(NewPass("private", runPrivate))
	Register(NewPass("rewrite", runRewrite))
}

func runParse(s *Session) error {
	if s.Config.Incremental {
		return runParseIncremental(s)
	}
	prog, err := lang.ParseSource(s.Source)
	if err != nil {
		return err
	}
	s.Program = prog
	return nil
}

func runCheck(s *Session) error {
	if s.Config.Incremental {
		return runCheckIncremental(s)
	}
	return lang.Check(s.Program)
}

func runNormalize(s *Session) error {
	if s.Config.Incremental && s.claimed != nil {
		return runNormalizeIncremental(s)
	}
	loops, err := ir.NormalizeProgram(s.Program)
	if err != nil {
		return err
	}
	s.Loops = loops
	return nil
}

func runInfer(s *Session) error {
	if s.Config.Incremental {
		// The incremental variant also runs on cold incremental compiles:
		// it produces identical results to InferProgram while recording
		// the per-loop symbol spans the retention step needs.
		return runInferIncremental(s)
	}
	results, err := infer.New(s.Program).InferProgram(s.Loops)
	if err != nil {
		return err
	}
	s.Inference = results
	s.External, s.ExternalSyms = infer.ExternalSystem(s.Program)
	return nil
}

func runRelax(s *Session) error {
	if s.Config.DisableRelaxation {
		s.Plans = make([]*optimize.LoopPlan, len(s.Inference))
		for i, r := range s.Inference {
			s.Plans[i] = &optimize.LoopPlan{Res: r, Sys: r.Sys}
		}
		return nil
	}
	s.Plans = optimize.Relax(s.Inference)
	return nil
}

func runSolve(s *Session) error {
	// The declared-partial function set is recomputed from the current
	// program on every compile (never cached across incremental edits):
	// the prover refuses totality lemmas on these functions.
	partial := s.Program.PartialFuncs()
	sol, err := solver.SolveProgramPartial(resultsOf(s.Plans), s.External, s.ExternalSyms, s.Config.SolverCache, partial)
	if err != nil && !s.Config.DisableRelaxation && anyRelaxed(s.Plans) {
		// Fall back to the unrelaxed systems if relaxation made the
		// system unsolvable.
		for _, p := range s.Plans {
			p.Sys = p.Res.Sys
			p.Relaxed = false
			p.GuardedSyms = nil
		}
		sol, err = solver.SolveProgramPartial(resultsOf(s.Plans), s.External, s.ExternalSyms, s.Config.SolverCache, partial)
	}
	if err != nil {
		return err
	}
	s.Solution = sol
	return nil
}

func runPrivate(s *Session) error {
	if s.Config.DisablePrivateSubPartitions {
		return nil
	}
	s.Private = optimize.FindPrivateSubPartitions(s.Plans, s.Solution, s.External)
	return nil
}

func runRewrite(s *Session) error {
	s.Parallel = rewrite.Build(s.Plans, s.Solution, s.Private)
	return nil
}

// resultsOf substitutes the (possibly relaxed) systems into the
// inference results the solver consumes. The solver only reads Sys,
// IterSym, and Accesses; we pass shallow copies with Sys swapped.
func resultsOf(plans []*optimize.LoopPlan) []*infer.Result {
	out := make([]*infer.Result, len(plans))
	for i, p := range plans {
		clone := *p.Res
		clone.Sys = p.Sys
		out[i] = &clone
	}
	return out
}

func anyRelaxed(plans []*optimize.LoopPlan) bool {
	for _, p := range plans {
		if p.Relaxed {
			return true
		}
	}
	return false
}
