// Package pipeline stages the auto-partitioning compiler as an explicit
// sequence of passes over a shared Session, replacing the former
// monolithic pkg/autopart.Compile body. Each phase of the paper —
// inference (§2), solving (§3), optimization (§5) — is a named Pass in a
// registry; observers receive per-pass wall time and artifact metrics,
// and every failure is recorded as a structured diagnostic
// (internal/diag) before it propagates. New passes (additional lemmas,
// caching layers, alternative solvers) drop in by registering a name and
// splicing it into the order.
package pipeline

import (
	"fmt"
	"time"

	"autopart/internal/constraint"
	"autopart/internal/diag"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/rewrite"
	"autopart/internal/solver"
)

// Config holds the compilation options the passes consult.
type Config struct {
	// DisableRelaxation turns off the §5.1 disjointness relaxation.
	DisableRelaxation bool
	// DisablePrivateSubPartitions turns off the §5.2 optimization.
	DisablePrivateSubPartitions bool
	// SolverCache, when set, is the shared cross-compile memo cache the
	// solve pass injects into every solver it constructs. Nil keeps the
	// solver's private per-compile cache (identical verdicts either way;
	// sharing only changes how fast they are reached).
	SolverCache *solver.MemoCache
	// Incremental makes the frontend passes diff the source against the
	// session's retained artifacts from its previous successful compile,
	// reusing the AST, IR, and inference results of unedited loops (see
	// incremental.go). Output is byte-identical to a cold compile; only
	// the work performed changes. Requires compiling related sources on
	// the same Session (Reset preserves the retained state).
	Incremental bool
}

// Session carries the source, options, and per-pass artifacts of one
// compilation through the pipeline. Passes read the artifacts of their
// predecessors and fill in their own; the zero value of every artifact
// means "not produced yet".
type Session struct {
	// Source is the DSL source text.
	Source string
	// File is the display name used when rendering diagnostics
	// ("<input>" when unset).
	File string
	// Config are the compilation options.
	Config Config

	// Program is the parsed AST (parse pass).
	Program *lang.Program
	// Loops is the normalized IR (normalize pass).
	Loops []*ir.Loop
	// Inference holds the per-loop constraint systems (infer pass).
	Inference []*infer.Result
	// External is the assumption system from externs/asserts (infer pass).
	External *constraint.System
	// ExternalSyms are the extern partition symbols (infer pass).
	ExternalSyms []string
	// Plans pair each loop with its possibly-relaxed system (relax pass).
	Plans []*optimize.LoopPlan
	// Solution is the solved DPL program (solve pass).
	Solution *solver.Solution
	// Private holds §5.2 private sub-partitions (private pass; may stay
	// nil).
	Private *optimize.PrivatePlan
	// Parallel is the rewritten launch structure (rewrite pass).
	Parallel []*rewrite.ParallelLoop

	// Diags accumulates structured diagnostics; a failed pass always
	// appends one before the error propagates.
	Diags []diag.Diagnostic

	// Incr is the artifact set retained from this session's previous
	// successful incremental compile; nil means the next incremental
	// compile starts cold. It is the only field Reset preserves.
	Incr *IncrState
	// Seg is the source segmentation (incremental parse pass only).
	Seg *lang.Segmented
	// claimed maps each loop index to the retained artifact reused for
	// it; nil entries are dirty loops. Nil slice means no diff happened
	// (cold or non-incremental compile).
	claimed []*loopArtifact
	// symSpans records each loop's symbol base and count (incremental
	// infer pass), the validity condition for future inference reuse.
	symSpans []symSpan
	// incrCold flags an incremental compile that fell back to the full
	// cold frontend; incrReused* count artifact reuses for Metrics.
	incrCold      bool
	incrReusedAST int
	incrReusedIR  int
	incrReusedInf int
}

// NewSession prepares a session for source text.
func NewSession(src string, cfg Config) *Session {
	return &Session{Source: src, File: "<input>", Config: cfg}
}

// Reset reinitializes the session for a new compilation, dropping every
// artifact and diagnostic while keeping the allocation itself alive.
// Services pool Sessions across requests; Reset is the recycling step.
// The retained incremental state survives Reset — it describes the last
// successful compile, which is exactly what the next incremental
// compile diffs against (stale state is rejected by its fingerprints,
// so carrying it across unrelated sources is safe, just useless).
func (s *Session) Reset(src string, cfg Config) {
	incr := s.Incr
	*s = Session{Source: src, File: "<input>", Config: cfg, Incr: incr}
}

// Metrics snapshots artifact sizes and counts for observability: loops,
// constraint and access counts, DPL statement counts, launches, and
// accumulated diagnostics. Only artifacts that exist contribute keys, so
// a pass's event reports exactly what the pipeline has built so far.
func (s *Session) Metrics() map[string]int {
	m := map[string]int{}
	if s.Program != nil {
		m["regions"] = len(s.Program.Regions)
		m["source_loops"] = len(s.Program.Loops)
		m["externs"] = len(s.Program.Externs)
		m["asserts"] = len(s.Program.Asserts)
	}
	if s.Loops != nil {
		m["loops"] = len(s.Loops)
	}
	if s.Inference != nil {
		preds, subsets, accesses := 0, 0, 0
		for _, r := range s.Inference {
			preds += len(r.Sys.Preds)
			subsets += len(r.Sys.Subsets)
			accesses += len(r.Accesses)
		}
		m["constraints"] = preds + subsets
		m["accesses"] = accesses
	}
	if s.External != nil {
		m["external_constraints"] = len(s.External.Preds) + len(s.External.Subsets)
	}
	if s.Plans != nil {
		relaxed := 0
		for _, p := range s.Plans {
			if p.Relaxed {
				relaxed++
			}
		}
		m["relaxed_loops"] = relaxed
	}
	if s.Solution != nil {
		m["partitions"] = len(s.Solution.Program.Stmts)
		m["obligations"] = len(s.Solution.System.Preds) + len(s.Solution.System.Subsets)
		m["solver_memo_hits"] = s.Solution.Stats.MemoHits
		m["solver_memo_misses"] = s.Solution.Stats.MemoMisses
		m["solver_closed_hits"] = s.Solution.Stats.ClosedHits
		m["solver_closed_misses"] = s.Solution.Stats.ClosedMisses
		m["solver_node_hits"] = s.Solution.Stats.NodeHits
		m["solver_nodes"] = s.Solution.Stats.Nodes
		m["solver_unify_us"] = int(s.Solution.Stats.UnifyNS / 1000)
		m["solver_graph_builds"] = s.Solution.Stats.GraphBuilds
		m["solver_graph_extends"] = s.Solution.Stats.GraphExtends
	}
	if s.Private != nil {
		m["private_subpartitions"] = len(s.Private.Extra.Stmts)
	}
	if s.Parallel != nil {
		m["launches"] = len(s.Parallel)
	}
	if s.Config.Incremental {
		if s.incrCold {
			m["incr_cold"] = 1
		} else {
			m["incr_cold"] = 0
		}
		m["incr_clean_loops"] = s.incrReusedAST
		if s.Program != nil {
			m["incr_dirty_loops"] = len(s.Program.Loops) - s.incrReusedAST
		}
		m["incr_reused_ir"] = s.incrReusedIR
		m["incr_reused_infer"] = s.incrReusedInf
	}
	m["diags"] = len(s.Diags)
	return m
}

// Pass is one stage of the compiler.
type Pass interface {
	// Name is the registry key and the name reported to observers.
	Name() string
	// Run executes the pass over the session.
	Run(*Session) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	run  func(*Session) error
}

func (p passFunc) Name() string         { return p.name }
func (p passFunc) Run(s *Session) error { return p.run(s) }

// NewPass wraps a function as a named Pass.
func NewPass(name string, run func(*Session) error) Pass {
	return passFunc{name: name, run: run}
}

// registry maps pass names to implementations. DefaultOrder lists the
// standard compilation sequence; both are fixed at init time and
// extended via Register.
var registry = map[string]Pass{}

// DefaultOrder is the standard pass sequence of the compiler, mirroring
// the paper: frontend (parse, check, normalize), inference (§2), the
// §5.1 relaxation, unification + solving (§3), §5.2 private
// sub-partitions, and the parallel rewrite.
var DefaultOrder = []string{
	"parse", "check", "normalize", "infer", "relax", "solve", "private", "rewrite",
}

// Register adds a pass to the registry (panics on duplicate names, which
// indicate an init-time programming error).
func Register(p Pass) {
	if _, dup := registry[p.Name()]; dup {
		panic(fmt.Sprintf("pipeline: duplicate pass %q", p.Name()))
	}
	registry[p.Name()] = p
}

// Lookup finds a registered pass.
func Lookup(name string) (Pass, bool) {
	p, ok := registry[name]
	return p, ok
}

// Passes resolves a sequence of pass names against the registry.
func Passes(names ...string) ([]Pass, error) {
	out := make([]Pass, 0, len(names))
	for _, name := range names {
		p, ok := registry[name]
		if !ok {
			return nil, fmt.Errorf("pipeline: unknown pass %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Default returns the standard pass sequence.
func Default() []Pass {
	ps, err := Passes(DefaultOrder...)
	if err != nil {
		panic(err) // DefaultOrder names only init-registered passes
	}
	return ps
}

// fallbackCode maps a pass name to the generic diagnostic code used when
// the pass fails with an uncoded error.
func fallbackCode(pass string) string {
	switch pass {
	case "parse":
		return "P000"
	case "check":
		return "C000"
	case "normalize":
		return "N000"
	case "infer":
		return "I000"
	case "relax", "private":
		return "O000"
	case "solve":
		return "S000"
	case "rewrite":
		return "R000"
	default:
		return ""
	}
}

// Runner executes a pass sequence over a session, notifying observers
// around every pass.
type Runner struct {
	Passes    []Pass
	Observers []Observer
}

// NewRunner builds a runner over the default pass sequence.
func NewRunner(obs ...Observer) *Runner {
	return &Runner{Passes: Default(), Observers: obs}
}

// Run executes the passes in order. On failure the error is recorded as
// a structured diagnostic on the session, observers still receive the
// pass-end event (with Err set), and the returned error wraps the
// pass's error with its name — preserving the "<pass>: ..." error shape
// of the pre-pipeline compiler.
func (r *Runner) Run(s *Session) error {
	for i, p := range r.Passes {
		for _, o := range r.Observers {
			o.OnPassStart(p.Name(), i)
		}
		start := time.Now()
		err := p.Run(s)
		wall := time.Since(start)
		if err != nil {
			s.Diags = append(s.Diags, diag.From(err, fallbackCode(p.Name())))
		}
		ev := PassEvent{
			Pass:    p.Name(),
			Index:   i,
			Wall:    wall,
			Metrics: s.Metrics(),
			Err:     err,
		}
		for _, o := range r.Observers {
			o.OnPassEnd(ev)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name(), err)
		}
	}
	if s.Config.Incremental {
		s.retain()
	}
	return nil
}
