package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const okSrc = `
region Y { val: scalar }
for i in Y {
  Y[i].val = 1
}
`

type recordingObserver struct {
	starts []string
	ends   []PassEvent
}

func (r *recordingObserver) OnPassStart(pass string, _ int) { r.starts = append(r.starts, pass) }
func (r *recordingObserver) OnPassEnd(ev PassEvent)         { r.ends = append(r.ends, ev) }

func TestRunnerExecutesDefaultOrder(t *testing.T) {
	rec := &recordingObserver{}
	s := NewSession(okSrc, Config{})
	if err := NewRunner(rec).Run(s); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(rec.starts, ","), strings.Join(DefaultOrder, ","); got != want {
		t.Errorf("pass order %s, want %s", got, want)
	}
	if len(rec.ends) != len(DefaultOrder) {
		t.Fatalf("%d end events, want %d", len(rec.ends), len(DefaultOrder))
	}
	for i, ev := range rec.ends {
		if ev.Pass != DefaultOrder[i] || ev.Index != i || ev.Err != nil {
			t.Errorf("event %d = %q/%d/%v, want %q/%d/nil", i, ev.Pass, ev.Index, ev.Err, DefaultOrder[i], i)
		}
		if ev.Metrics == nil {
			t.Errorf("event %d has no metrics", i)
		}
	}
	// Artifacts accumulate monotonically: the final event sees the full
	// compilation.
	final := rec.ends[len(rec.ends)-1].Metrics
	for _, key := range []string{"loops", "constraints", "partitions", "launches"} {
		if final[key] == 0 {
			t.Errorf("final metrics missing %s: %v", key, final)
		}
	}
	if s.Solution == nil || len(s.Parallel) == 0 {
		t.Error("session artifacts incomplete after successful run")
	}
}

func TestRunnerRecordsDiagnosticOnFailure(t *testing.T) {
	rec := &recordingObserver{}
	s := NewSession("region R { a: scalar }\nfor i in Q { }\n", Config{})
	err := NewRunner(rec).Run(s)
	if err == nil {
		t.Fatal("expected failure")
	}
	// The failing pass name prefixes the error (historical shape).
	if !strings.HasPrefix(err.Error(), "check: ") {
		t.Errorf("error %q does not carry pass prefix", err)
	}
	if len(s.Diags) != 1 {
		t.Fatalf("%d diagnostics, want 1", len(s.Diags))
	}
	d := s.Diags[0]
	if d.Code != "C011" || !d.HasPos() {
		t.Errorf("diagnostic = code %q pos %v, want C011 with position", d.Code, d.Pos)
	}
	// Observers saw the failing pass end with Err set, and nothing after.
	last := rec.ends[len(rec.ends)-1]
	if last.Pass != "check" || last.Err == nil {
		t.Errorf("last event = %q err=%v, want failing check", last.Pass, last.Err)
	}
}

func TestConfigDisablesOptimizations(t *testing.T) {
	s := NewSession(okSrc, Config{DisableRelaxation: true, DisablePrivateSubPartitions: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Plans {
		if p.Relaxed {
			t.Error("relaxation ran despite DisableRelaxation")
		}
	}
	if s.Private != nil {
		t.Error("private sub-partitions ran despite DisablePrivateSubPartitions")
	}
}

func TestTraceObserverEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewSession(okSrc, Config{})
	if err := NewRunner(TraceObserver{W: &buf}).Run(s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(DefaultOrder) {
		t.Fatalf("%d trace lines, want %d", len(lines), len(DefaultOrder))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["pass"] != DefaultOrder[i] {
			t.Errorf("line %d pass = %v, want %s", i, rec["pass"], DefaultOrder[i])
		}
	}
}

func TestPassesRejectsUnknownName(t *testing.T) {
	if _, err := Passes("parse", "no-such-pass"); err == nil {
		t.Error("expected error for unknown pass name")
	}
	if _, ok := Lookup("solve"); !ok {
		t.Error("solve pass not registered")
	}
}
