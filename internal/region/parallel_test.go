package region

import (
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/par"
)

// TestParallelMatchesSequential evaluates every partition operator twice
// — once inline, once over a forced 4-worker pool — and requires
// identical subsets. On single-CPU machines this is the only test that
// actually exercises the concurrent path in this package.
func TestParallelMatchesSequential(t *testing.T) {
	build := func() map[string]*Partition {
		r := New("R", 4096)
		s := New("S", 4096)
		p := Equal("p", r, 16)
		q := Preimage("q", r, geometry.AffineMap{Name: "shift", Stride: 1, Offset: 3, Modulo: 4096}, p)
		out := map[string]*Partition{
			"p":        p,
			"q":        q,
			"union":    Union("u", p, q),
			"inter":    Intersect("i", p, q),
			"minus":    Subtract("m", p, q),
			"image":    Image("img", p, geometry.AffineMap{Name: "neg", Stride: -1, Offset: 4095}, s),
			"preimage": Preimage("pre", s, geometry.AffineMap{Name: "wrap", Stride: 1, Offset: 17, Modulo: 4096}, p),
			"disj":     Disjointify("d", Union("u2", q, p)),
		}
		ranges := make([]geometry.Interval, 4096)
		for i := range ranges {
			lo := int64(i * 3 % 4000)
			ranges[i] = geometry.Interval{Lo: lo, Hi: lo + 5}
		}
		rt := geometry.RangeTableMap{Name: "rt", Ranges: ranges}
		out["imulti"] = ImageMulti("im", p, rt, s)
		out["pmulti"] = PreimageMulti("pm", r, rt, p)
		return out
	}

	par.SetSequential(true)
	seq := build()
	par.SetSequential(false)
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	parl := build()

	for name, sp := range seq {
		pp := parl[name]
		if sp.NumSubs() != pp.NumSubs() {
			t.Fatalf("%s: NumSubs %d vs %d", name, sp.NumSubs(), pp.NumSubs())
		}
		for i := 0; i < sp.NumSubs(); i++ {
			if !sp.Sub(i).Equal(pp.Sub(i)) {
				t.Errorf("%s sub %d: sequential %s, parallel %s", name, i, sp.Sub(i), pp.Sub(i))
			}
		}
		if sp.IsDisjoint() != pp.IsDisjoint() || sp.IsComplete() != pp.IsComplete() {
			t.Errorf("%s: disjoint/complete flags differ", name)
		}
		if !sp.UnionAll().Equal(pp.UnionAll()) {
			t.Errorf("%s: UnionAll differs", name)
		}
	}
}

// TestUnionCacheSharedByRename asserts Rename reuses the lazily computed
// union rather than recomputing it.
func TestUnionCacheSharedByRename(t *testing.T) {
	r := New("R", 128)
	p := Equal("p", r, 4)
	u := p.UnionAll()
	renamed := p.Rename("p2")
	if !renamed.UnionAll().Equal(u) {
		t.Fatalf("renamed union %s != %s", renamed.UnionAll(), u)
	}
	if p.union == nil || renamed.union == nil || p.union != renamed.union {
		t.Fatal("Rename should share the union cache")
	}
}
