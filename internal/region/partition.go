package region

import (
	"fmt"
	"strings"
	"sync"

	"autopart/internal/geometry"
	"autopart/internal/par"
)

// Partition is a first-class, indexed family of subregions of a parent
// region: Partition[i] is the index set of the ith subregion. All
// partitions appearing together in one parallel launch share the same
// color space [0, NumSubs).
type Partition struct {
	name   string
	parent *Region
	subs   []geometry.IndexSet
	// union lazily caches UnionAll; shared by Rename views (the
	// subregions are immutable, so the union is too).
	union *unionCache
}

type unionCache struct {
	once sync.Once
	set  geometry.IndexSet
}

func newPartition(name string, parent *Region, subs []geometry.IndexSet) *Partition {
	return &Partition{name: name, parent: parent, subs: subs, union: &unionCache{}}
}

// NewPartition wraps explicit subregion index sets into a partition of
// parent. It panics if any subregion escapes the parent's index space —
// PART(P, R) is an invariant of the type, not a runtime property.
func NewPartition(name string, parent *Region, subs []geometry.IndexSet) *Partition {
	space := parent.Space()
	for i, s := range subs {
		if !s.SubsetOf(space) {
			panic(fmt.Sprintf("partition %s: subregion %d escapes region %s", name, i, parent.Name()))
		}
	}
	return newPartition(name, parent, subs)
}

// Name returns the partition's name.
func (p *Partition) Name() string { return p.name }

// Parent returns the partitioned region.
func (p *Partition) Parent() *Region { return p.parent }

// NumSubs returns the number of subregions (the size of the color space).
func (p *Partition) NumSubs() int { return len(p.subs) }

// Sub returns the index set of the ith subregion.
func (p *Partition) Sub(i int) geometry.IndexSet { return p.subs[i] }

// Subs returns all subregion index sets. The caller must not modify the
// returned slice.
func (p *Partition) Subs() []geometry.IndexSet { return p.subs }

// IsDisjoint reports whether the subregions are pairwise disjoint
// (the DISJ predicate), in one sorted sweep over all intervals.
func (p *Partition) IsDisjoint() bool {
	return geometry.DisjointAll(p.subs)
}

// IsComplete reports whether the union of subregions covers the parent
// region (the COMP predicate).
func (p *Partition) IsComplete() bool {
	return p.parent.Space().SubsetOf(p.UnionAll())
}

// UnionAll returns the union of all subregions, computed with a single
// k-way merge and cached: the interpreter's membership tests (IfIn over
// a partition space) call this once per element.
func (p *Partition) UnionAll() geometry.IndexSet {
	if p.union == nil {
		// Zero-value or legacy construction: compute without caching.
		return geometry.UnionAll(p.subs)
	}
	p.union.once.Do(func() { p.union.set = geometry.UnionAll(p.subs) })
	return p.union.set
}

// SubsetOf reports whether p[i] ⊆ other[i] for every color i — the subset
// constraint E1 ⊆ E2 of the constraint language. It requires other to
// have at least as many colors as p.
func (p *Partition) SubsetOf(other *Partition) bool {
	if p.parent != other.parent || len(other.subs) < len(p.subs) {
		return false
	}
	for i, s := range p.subs {
		if !s.SubsetOf(other.subs[i]) {
			return false
		}
	}
	return true
}

// SamePartition reports whether the two partitions have identical
// subregions (same parent, same color space, same index sets).
func (p *Partition) SamePartition(other *Partition) bool {
	if p.parent != other.parent || len(p.subs) != len(other.subs) {
		return false
	}
	for i, s := range p.subs {
		if !s.Equal(other.subs[i]) {
			return false
		}
	}
	return true
}

// OwnedPiece is one owner color's share of an index set: the slice of a
// ghost/halo region that a single node holds the valid copy of.
type OwnedPiece struct {
	Color int
	Set   geometry.IndexSet
}

// SplitByOwner splits s along the colors of the owner partition,
// returning the non-empty pieces in ascending color order. Both the cost
// model (predicting transfer volumes) and the distributed executor
// (planning the actual messages) derive their per-pair traffic from this
// split, which is what keeps measured and predicted bytes comparable.
// Elements of s outside the owner's union appear in no piece.
func SplitByOwner(s geometry.IndexSet, owner *Partition) []OwnedPiece {
	if s.Empty() {
		return nil
	}
	var out []OwnedPiece
	for k := 0; k < owner.NumSubs(); k++ {
		piece := s.Intersect(owner.Sub(k))
		if piece.Empty() {
			continue
		}
		out = append(out, OwnedPiece{Color: k, Set: piece})
	}
	return out
}

// Rename returns a view of the partition under a different name, sharing
// subregion storage (and the cached union).
func (p *Partition) Rename(name string) *Partition {
	return &Partition{name: name, parent: p.parent, subs: p.subs, union: p.union}
}

func (p *Partition) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s = partition of %s:", p.name, p.parent.Name())
	for i, s := range p.subs {
		fmt.Fprintf(&sb, "\n  [%d] %s", i, s.String())
	}
	return sb.String()
}

func combine(name string, a, b *Partition, op func(x, y geometry.IndexSet) geometry.IndexSet) *Partition {
	if a.parent != b.parent {
		panic(fmt.Sprintf("partition %s: operands partition different regions (%s, %s)",
			name, a.parent.Name(), b.parent.Name()))
	}
	n := len(a.subs)
	if len(b.subs) != n {
		panic(fmt.Sprintf("partition %s: color space mismatch (%d vs %d)", name, n, len(b.subs)))
	}
	subs := make([]geometry.IndexSet, n)
	par.Do(n, func(i int) {
		subs[i] = op(a.subs[i], b.subs[i])
	})
	return newPartition(name, a.parent, subs)
}

// Union returns the subregion-wise union (E1 ∪ E2)[i] = E1[i] ∪ E2[i].
func Union(name string, a, b *Partition) *Partition {
	return combine(name, a, b, geometry.IndexSet.Union)
}

// Intersect returns the subregion-wise intersection.
func Intersect(name string, a, b *Partition) *Partition {
	return combine(name, a, b, geometry.IndexSet.Intersect)
}

// Subtract returns the subregion-wise difference.
func Subtract(name string, a, b *Partition) *Partition {
	return combine(name, a, b, geometry.IndexSet.Subtract)
}

// Disjointify returns a disjoint partition with the same per-color
// coverage intent: each element goes to the first color containing it.
// Used to derive an owner (valid-instance) distribution from a possibly
// aliased partition.
func Disjointify(name string, p *Partition) *Partition {
	var covered geometry.IndexSet
	subs := make([]geometry.IndexSet, p.NumSubs())
	for i := range subs {
		subs[i] = p.Sub(i).Subtract(covered)
		covered = covered.Union(p.Sub(i))
	}
	return newPartition(name, p.parent, subs)
}

// Equal creates a complete, disjoint partition of r into n subregions of
// (approximately) equal size — the equal DPL operator.
func Equal(name string, r *Region, n int) *Partition {
	if n <= 0 {
		panic(fmt.Sprintf("partition %s: non-positive color count %d", name, n))
	}
	size := r.Size()
	subs := make([]geometry.IndexSet, n)
	chunk := size / int64(n)
	rem := size % int64(n)
	var lo int64
	for i := 0; i < n; i++ {
		hi := lo + chunk
		if int64(i) < rem {
			hi++
		}
		subs[i] = geometry.Range(lo, hi)
		lo = hi
	}
	return newPartition(name, r, subs)
}

// Image creates the partition image(src, f, target)[i] = f(src[i]) ∩
// target — the image DPL operator.
func Image(name string, src *Partition, f geometry.IndexMap, target *Region) *Partition {
	space := target.Space()
	subs := make([]geometry.IndexSet, len(src.subs))
	par.Do(len(src.subs), func(i int) {
		subs[i] = geometry.Image(src.subs[i], f, space)
	})
	return newPartition(name, target, subs)
}

// Preimage creates preimage(domain, f, src)[i] = f⁻¹(src[i]) ∩ domain —
// the preimage DPL operator.
func Preimage(name string, domain *Region, f geometry.IndexMap, src *Partition) *Partition {
	space := domain.Space()
	subs := make([]geometry.IndexSet, len(src.subs))
	par.Do(len(src.subs), func(i int) {
		subs[i] = geometry.Preimage(space, f, src.subs[i])
	})
	return newPartition(name, domain, subs)
}

// ImageMulti creates IMAGE(src, F, target) for a multi-valued map — the
// generalized image operator of §4.
func ImageMulti(name string, src *Partition, f geometry.MultiMap, target *Region) *Partition {
	space := target.Space()
	subs := make([]geometry.IndexSet, len(src.subs))
	par.Do(len(src.subs), func(i int) {
		subs[i] = geometry.ImageMulti(src.subs[i], f, space)
	})
	return newPartition(name, target, subs)
}

// PreimageMulti creates PREIMAGE(domain, F, src) for a multi-valued map —
// the generalized preimage operator of §4.
func PreimageMulti(name string, domain *Region, f geometry.MultiMap, src *Partition) *Partition {
	space := domain.Space()
	subs := make([]geometry.IndexSet, len(src.subs))
	par.Do(len(src.subs), func(i int) {
		subs[i] = geometry.PreimageMulti(space, f, src.subs[i])
	})
	return newPartition(name, domain, subs)
}
