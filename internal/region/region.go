// Package region implements logical regions and first-class data
// partitions, the core data model of the paper (and of Regent/Legion,
// which it substitutes for).
//
// A Region is an indexed collection of values; every element has a unique
// int64 index and the same set of named fields. Fields are either scalar
// (float64), index-valued ("pointer" fields such as Particles[·].cell),
// or range-valued (pairs of bounds such as the CSR Ranges region of §4).
//
// A Partition is an indexed family of subregions (index subsets) of a
// parent region. Partitions are first-class: they are named values that
// can be passed around, combined subregion-wise, and tested for the
// disjointness and completeness properties the constraint language
// predicates DISJ and COMP describe.
package region

import (
	"fmt"
	"sort"

	"autopart/internal/geometry"
)

// FieldKind distinguishes the value type stored in a region field.
type FieldKind int

// Field kinds.
const (
	// ScalarField holds float64 data values.
	ScalarField FieldKind = iota
	// IndexField holds int64 indices into another region ("pointer"
	// fields); a negative entry denotes a null pointer.
	IndexField
	// RangeField holds half-open index intervals (data-dependent inner
	// loop bounds, §4).
	RangeField
)

func (k FieldKind) String() string {
	switch k {
	case ScalarField:
		return "scalar"
	case IndexField:
		return "index"
	case RangeField:
		return "range"
	default:
		return fmt.Sprintf("FieldKind(%d)", int(k))
	}
}

// Region is a named, indexed collection of structured values over the
// index space [0, Size).
type Region struct {
	name    string
	size    int64
	scalars map[string][]float64
	indexes map[string][]int64
	ranges  map[string][]geometry.Interval
}

// New creates a region with the given name and index space [0, size).
func New(name string, size int64) *Region {
	if size < 0 {
		panic(fmt.Sprintf("region %s: negative size %d", name, size))
	}
	return &Region{
		name:    name,
		size:    size,
		scalars: map[string][]float64{},
		indexes: map[string][]int64{},
		ranges:  map[string][]geometry.Interval{},
	}
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Size returns the number of elements in the region.
func (r *Region) Size() int64 { return r.size }

// Space returns the region's index space as a set.
func (r *Region) Space() geometry.IndexSet { return geometry.Range(0, r.size) }

// AddScalarField adds a float64 field initialized to zero. It panics if a
// field of the name already exists.
func (r *Region) AddScalarField(name string) {
	r.checkFresh(name)
	r.scalars[name] = make([]float64, r.size)
}

// AddIndexField adds an index-valued (pointer) field initialized to null
// (-1). It panics if a field of the name already exists.
func (r *Region) AddIndexField(name string) {
	r.checkFresh(name)
	vals := make([]int64, r.size)
	for i := range vals {
		vals[i] = -1
	}
	r.indexes[name] = vals
}

// AddRangeField adds a range-valued field initialized to empty ranges. It
// panics if a field of the name already exists.
func (r *Region) AddRangeField(name string) {
	r.checkFresh(name)
	r.ranges[name] = make([]geometry.Interval, r.size)
}

func (r *Region) checkFresh(name string) {
	if r.HasField(name) {
		panic(fmt.Sprintf("region %s: duplicate field %s", r.name, name))
	}
}

// HasField reports whether the region has a field of the given name.
func (r *Region) HasField(name string) bool {
	_, s := r.scalars[name]
	_, i := r.indexes[name]
	_, g := r.ranges[name]
	return s || i || g
}

// FieldKindOf returns the kind of the named field; ok is false when the
// field does not exist.
func (r *Region) FieldKindOf(name string) (kind FieldKind, ok bool) {
	if _, found := r.scalars[name]; found {
		return ScalarField, true
	}
	if _, found := r.indexes[name]; found {
		return IndexField, true
	}
	if _, found := r.ranges[name]; found {
		return RangeField, true
	}
	return 0, false
}

// FieldNames returns the region's field names in sorted order.
func (r *Region) FieldNames() []string {
	var names []string
	for n := range r.scalars {
		names = append(names, n)
	}
	for n := range r.indexes {
		names = append(names, n)
	}
	for n := range r.ranges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scalar returns the backing slice of a scalar field. It panics if the
// field does not exist or has a different kind.
func (r *Region) Scalar(name string) []float64 {
	vals, ok := r.scalars[name]
	if !ok {
		panic(fmt.Sprintf("region %s: no scalar field %s", r.name, name))
	}
	return vals
}

// Index returns the backing slice of an index field. It panics if the
// field does not exist or has a different kind.
func (r *Region) Index(name string) []int64 {
	vals, ok := r.indexes[name]
	if !ok {
		panic(fmt.Sprintf("region %s: no index field %s", r.name, name))
	}
	return vals
}

// Ranges returns the backing slice of a range field. It panics if the
// field does not exist or has a different kind.
func (r *Region) Ranges(name string) []geometry.Interval {
	vals, ok := r.ranges[name]
	if !ok {
		panic(fmt.Sprintf("region %s: no range field %s", r.name, name))
	}
	return vals
}

// PointerMap returns the index map k ↦ R[k].field for an index field,
// named "R[·].field" as in the paper's notation.
func (r *Region) PointerMap(field string) geometry.IndexMap {
	return geometry.TableMap{
		Name:  fmt.Sprintf("%s[·].%s", r.name, field),
		Table: r.Index(field),
	}
}

// RangeMap returns the multi-valued map k ↦ R[k].field for a range field.
func (r *Region) RangeMap(field string) geometry.MultiMap {
	return geometry.RangeTableMap{
		Name:   fmt.Sprintf("%s[·].%s", r.name, field),
		Ranges: r.Ranges(field),
	}
}

// CloneData returns a deep copy of the region (same name, sizes, and field
// contents). Used by differential tests that compare sequential and
// parallel executions of the same program.
func (r *Region) CloneData() *Region {
	c := New(r.name, r.size)
	for n, v := range r.scalars {
		c.scalars[n] = append([]float64(nil), v...)
	}
	for n, v := range r.indexes {
		c.indexes[n] = append([]int64(nil), v...)
	}
	for n, v := range r.ranges {
		c.ranges[n] = append([]geometry.Interval(nil), v...)
	}
	return c
}

// SameData reports whether two regions have identical field contents. It
// returns a description of the first difference for test diagnostics.
func (r *Region) SameData(other *Region) (bool, string) {
	if r.size != other.size {
		return false, fmt.Sprintf("size %d vs %d", r.size, other.size)
	}
	for n, v := range r.scalars {
		ov, ok := other.scalars[n]
		if !ok {
			return false, "missing scalar field " + n
		}
		for i := range v {
			if v[i] != ov[i] {
				return false, fmt.Sprintf("%s.%s[%d]: %v vs %v", r.name, n, i, v[i], ov[i])
			}
		}
	}
	for n, v := range r.indexes {
		ov, ok := other.indexes[n]
		if !ok {
			return false, "missing index field " + n
		}
		for i := range v {
			if v[i] != ov[i] {
				return false, fmt.Sprintf("%s.%s[%d]: %v vs %v", r.name, n, i, v[i], ov[i])
			}
		}
	}
	for n, v := range r.ranges {
		ov, ok := other.ranges[n]
		if !ok {
			return false, "missing range field " + n
		}
		for i := range v {
			if v[i] != ov[i] {
				return false, fmt.Sprintf("%s.%s[%d]: %v vs %v", r.name, n, i, v[i], ov[i])
			}
		}
	}
	return true, ""
}
