package region

import (
	"strings"
	"testing"

	"autopart/internal/geometry"
)

func TestRegionFields(t *testing.T) {
	r := New("Cells", 10)
	if r.Name() != "Cells" || r.Size() != 10 {
		t.Fatalf("Name/Size = %s/%d", r.Name(), r.Size())
	}
	if got := r.Space().String(); got != "{0..9}" {
		t.Errorf("Space = %s", got)
	}

	r.AddScalarField("vel")
	r.AddIndexField("next")
	r.AddRangeField("span")

	if !r.HasField("vel") || !r.HasField("next") || !r.HasField("span") {
		t.Error("HasField should find all added fields")
	}
	if r.HasField("bogus") {
		t.Error("HasField found a nonexistent field")
	}

	if k, ok := r.FieldKindOf("vel"); !ok || k != ScalarField {
		t.Errorf("FieldKindOf(vel) = %v, %v", k, ok)
	}
	if k, ok := r.FieldKindOf("next"); !ok || k != IndexField {
		t.Errorf("FieldKindOf(next) = %v, %v", k, ok)
	}
	if k, ok := r.FieldKindOf("span"); !ok || k != RangeField {
		t.Errorf("FieldKindOf(span) = %v, %v", k, ok)
	}
	if _, ok := r.FieldKindOf("bogus"); ok {
		t.Error("FieldKindOf found a nonexistent field")
	}

	names := r.FieldNames()
	if len(names) != 3 || names[0] != "next" || names[1] != "span" || names[2] != "vel" {
		t.Errorf("FieldNames = %v", names)
	}

	// Index fields start null.
	for i, v := range r.Index("next") {
		if v != -1 {
			t.Fatalf("next[%d] = %d, want -1", i, v)
		}
	}
}

func TestFieldKindStrings(t *testing.T) {
	if ScalarField.String() != "scalar" || IndexField.String() != "index" || RangeField.String() != "range" {
		t.Error("FieldKind strings wrong")
	}
	if !strings.Contains(FieldKind(42).String(), "42") {
		t.Error("unknown FieldKind should include the number")
	}
}

func TestRegionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := New("R", 4)
	r.AddScalarField("x")
	mustPanic("duplicate field", func() { r.AddIndexField("x") })
	mustPanic("negative size", func() { New("bad", -1) })
	mustPanic("wrong kind", func() { r.Index("x") })
	mustPanic("missing scalar", func() { r.Scalar("nope") })
	mustPanic("missing ranges", func() { r.Ranges("nope") })
}

func TestPointerAndRangeMaps(t *testing.T) {
	r := New("Particles", 4)
	r.AddIndexField("cell")
	copy(r.Index("cell"), []int64{2, 0, 2, -1})

	m := r.PointerMap("cell")
	if m.MapName() != "Particles[·].cell" {
		t.Errorf("MapName = %q", m.MapName())
	}
	if v, ok := m.Apply(0); !ok || v != 2 {
		t.Errorf("Apply(0) = %d, %v", v, ok)
	}
	if _, ok := m.Apply(3); ok {
		t.Error("null pointer should be out of domain")
	}

	s := New("Ranges", 2)
	s.AddRangeField("r")
	s.Ranges("r")[0] = geometry.Interval{Lo: 0, Hi: 3}
	s.Ranges("r")[1] = geometry.Interval{Lo: 3, Hi: 4}
	mm := s.RangeMap("r")
	if got := mm.ApplyMulti(0).String(); got != "{0..2}" {
		t.Errorf("ApplyMulti(0) = %s", got)
	}
}

func TestCloneAndSameData(t *testing.T) {
	r := New("R", 3)
	r.AddScalarField("x")
	r.AddIndexField("p")
	r.AddRangeField("g")
	r.Scalar("x")[1] = 3.5
	r.Index("p")[2] = 1
	r.Ranges("g")[0] = geometry.Interval{Lo: 1, Hi: 2}

	c := r.CloneData()
	if same, diff := r.SameData(c); !same {
		t.Fatalf("clone differs: %s", diff)
	}
	c.Scalar("x")[0] = 9
	if same, _ := r.SameData(c); same {
		t.Error("SameData should detect scalar difference")
	}
	c.Scalar("x")[0] = 0
	c.Index("p")[0] = 7
	if same, _ := r.SameData(c); same {
		t.Error("SameData should detect index difference")
	}
	c.Index("p")[0] = -1
	c.Ranges("g")[1] = geometry.Interval{Lo: 0, Hi: 1}
	if same, _ := r.SameData(c); same {
		t.Error("SameData should detect range difference")
	}
}

func TestEqualPartition(t *testing.T) {
	r := New("R", 10)
	p := Equal("P", r, 3)
	if p.NumSubs() != 3 {
		t.Fatalf("NumSubs = %d", p.NumSubs())
	}
	// 10 = 4 + 3 + 3.
	wants := []string{"{0..3}", "{4..6}", "{7..9}"}
	for i, w := range wants {
		if got := p.Sub(i).String(); got != w {
			t.Errorf("Sub(%d) = %s, want %s", i, got, w)
		}
	}
	if !p.IsDisjoint() || !p.IsComplete() {
		t.Error("equal partition must be disjoint and complete")
	}
	if got := p.UnionAll(); !got.Equal(r.Space()) {
		t.Errorf("UnionAll = %s", got)
	}
}

func TestEqualPartitionMoreColorsThanElements(t *testing.T) {
	r := New("R", 2)
	p := Equal("P", r, 4)
	if p.NumSubs() != 4 {
		t.Fatalf("NumSubs = %d", p.NumSubs())
	}
	if p.Sub(0).Len() != 1 || p.Sub(1).Len() != 1 || !p.Sub(2).Empty() || !p.Sub(3).Empty() {
		t.Errorf("subs = %v %v %v %v", p.Sub(0), p.Sub(1), p.Sub(2), p.Sub(3))
	}
	if !p.IsDisjoint() || !p.IsComplete() {
		t.Error("equal partition must be disjoint and complete")
	}
}

func TestImagePreimagePartitions(t *testing.T) {
	particles := New("Particles", 6)
	particles.AddIndexField("cell")
	copy(particles.Index("cell"), []int64{0, 0, 1, 1, 2, 2})
	cells := New("Cells", 3)

	p1 := Equal("P1", particles, 2) // {0..2}, {3..5}
	p2 := Image("P2", p1, particles.PointerMap("cell"), cells)
	if got := p2.Sub(0).String(); got != "{0..1}" {
		t.Errorf("P2[0] = %s", got)
	}
	if got := p2.Sub(1).String(); got != "{1..2}" {
		t.Errorf("P2[1] = %s", got)
	}
	if p2.Parent() != cells {
		t.Error("image partition parent should be Cells")
	}
	if p2.IsDisjoint() {
		t.Error("this image partition overlaps at cell 1")
	}
	if !p2.IsComplete() {
		t.Error("image covers all cells here")
	}

	// Preimage of an equal partition of cells.
	pc := Equal("PC", cells, 3)
	pp := Preimage("PP", particles, particles.PointerMap("cell"), pc)
	wants := []string{"{0..1}", "{2..3}", "{4..5}"}
	for i, w := range wants {
		if got := pp.Sub(i).String(); got != w {
			t.Errorf("PP[%d] = %s, want %s", i, got, w)
		}
	}
	if !pp.IsDisjoint() || !pp.IsComplete() {
		t.Error("preimage of a disjoint complete partition under a total function is disjoint and complete")
	}
}

func TestImageMultiPartition(t *testing.T) {
	y := New("Y", 4)
	ranges := New("Ranges", 4)
	ranges.AddRangeField("span")
	spans := ranges.Ranges("span")
	spans[0] = geometry.Interval{Lo: 0, Hi: 2}
	spans[1] = geometry.Interval{Lo: 2, Hi: 3}
	spans[2] = geometry.Interval{Lo: 3, Hi: 6}
	spans[3] = geometry.Interval{Lo: 6, Hi: 8}
	mat := New("Mat", 8)

	py := Equal("PY", y, 2)
	// Identify Y's colors with Ranges' rows via identity image.
	pr := Image("PR", py, geometry.IdentityMap{}, ranges)
	pm := ImageMulti("PM", pr, ranges.RangeMap("span"), mat)
	if got := pm.Sub(0).String(); got != "{0..2}" {
		t.Errorf("PM[0] = %s", got)
	}
	if got := pm.Sub(1).String(); got != "{3..7}" {
		t.Errorf("PM[1] = %s", got)
	}
	if !pm.IsDisjoint() || !pm.IsComplete() {
		t.Error("CSR row partition should be disjoint and complete here")
	}

	back := PreimageMulti("PB", ranges, ranges.RangeMap("span"), pm)
	if got := back.Sub(0).String(); got != "{0..1}" {
		t.Errorf("PB[0] = %s", got)
	}
	if got := back.Sub(1).String(); got != "{2..3}" {
		t.Errorf("PB[1] = %s", got)
	}
}

func TestPartitionCombinators(t *testing.T) {
	r := New("R", 8)
	a := NewPartition("A", r, []geometry.IndexSet{geometry.Range(0, 4), geometry.Range(4, 8)})
	b := NewPartition("B", r, []geometry.IndexSet{geometry.Range(2, 6), geometry.Range(6, 8)})

	u := Union("U", a, b)
	if got := u.Sub(0).String(); got != "{0..5}" {
		t.Errorf("U[0] = %s", got)
	}
	i := Intersect("I", a, b)
	if got := i.Sub(0).String(); got != "{2..3}" {
		t.Errorf("I[0] = %s", got)
	}
	d := Subtract("D", a, b)
	if got := d.Sub(0).String(); got != "{0..1}" {
		t.Errorf("D[0] = %s", got)
	}
	if got := d.Sub(1).String(); got != "{4..5}" {
		t.Errorf("D[1] = %s", got)
	}

	if !i.SubsetOf(a) || !i.SubsetOf(b) || !d.SubsetOf(a) || !a.SubsetOf(u) {
		t.Error("combinator subset relations violated")
	}
}

func TestPartitionChecksAndPanics(t *testing.T) {
	r := New("R", 8)
	s := New("S", 8)
	a := Equal("A", r, 2)
	b := Equal("B", s, 2)
	c := Equal("C", r, 3)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("different parents", func() { Union("U", a, b) })
	mustPanic("color mismatch", func() { Union("U", a, c) })
	mustPanic("escaping subregion", func() {
		NewPartition("X", r, []geometry.IndexSet{geometry.Range(0, 100)})
	})
	mustPanic("bad color count", func() { Equal("E", r, 0) })

	if a.SubsetOf(b) {
		t.Error("partitions of different regions are never subsets")
	}
	if a.SamePartition(c) {
		t.Error("different color spaces are not the same partition")
	}
	if !a.SamePartition(a.Rename("A2")) {
		t.Error("renamed partition should compare equal")
	}
	if a.Rename("A2").Name() != "A2" {
		t.Error("Rename should change the name")
	}
}

func TestPartitionString(t *testing.T) {
	r := New("R", 4)
	p := Equal("P", r, 2)
	s := p.String()
	if !strings.Contains(s, "P = partition of R") || !strings.Contains(s, "[0]") {
		t.Errorf("String = %q", s)
	}
}

func TestSubsetOfRequiresEnoughColors(t *testing.T) {
	r := New("R", 8)
	small := NewPartition("S", r, []geometry.IndexSet{geometry.Range(0, 2)})
	big := NewPartition("B", r, []geometry.IndexSet{geometry.Range(0, 4), geometry.Range(4, 8)})
	if !small.SubsetOf(big) {
		t.Error("small ⊆ big with fewer colors should hold")
	}
	if big.SubsetOf(small) {
		t.Error("big has more colors than small; subset must fail")
	}
}

func TestDisjointify(t *testing.T) {
	r := New("R", 10)
	aliased := NewPartition("A", r, []geometry.IndexSet{
		geometry.Range(0, 6),
		geometry.Range(4, 10),
	})
	d := Disjointify("D", aliased)
	if !d.IsDisjoint() {
		t.Fatal("Disjointify must produce a disjoint partition")
	}
	// Coverage is preserved; overlap goes to the first color.
	if !d.UnionAll().Equal(aliased.UnionAll()) {
		t.Error("coverage changed")
	}
	if got := d.Sub(0).String(); got != "{0..5}" {
		t.Errorf("D[0] = %s", got)
	}
	if got := d.Sub(1).String(); got != "{6..9}" {
		t.Errorf("D[1] = %s", got)
	}
	// Already-disjoint partitions are unchanged.
	eq := Equal("E", r, 3)
	if !Disjointify("E2", eq).SamePartition(eq) {
		t.Error("disjoint input should be unchanged")
	}
}
