package rewrite

import (
	"fmt"
	"sort"

	"autopart/internal/ir"
	"autopart/internal/region"
)

// Executor runs parallel loops against concrete regions and partitions
// with parallel semantics: each task (color) reads the launch-entry
// snapshot plus its own writes, writes flush at task end, and uncentered
// reduction contributions collect in per-task buffers merged after all
// tasks. Every access is containment-checked against the task's
// subregion; a violation means the partitioning was unsound and aborts
// the launch.
type Executor struct {
	M *ir.Machine
	// Parts binds canonical partition symbols to evaluated partitions.
	Parts map[string]*region.Partition
}

// NewExecutor creates an executor over a machine.
func NewExecutor(m *ir.Machine) *Executor {
	return &Executor{M: m, Parts: map[string]*region.Partition{}}
}

// Bind registers an evaluated partition.
func (ex *Executor) Bind(sym string, p *region.Partition) *Executor {
	ex.Parts[sym] = p
	return ex
}

// FieldKey identifies a region field.
type FieldKey struct{ Region, Field string }

// overlay is a task's private view: reads hit the task's writes first,
// then the launch snapshot; writes stay private until flush.
type overlay struct {
	scalars map[FieldKey]map[int64]float64
	indexes map[FieldKey]map[int64]int64
}

func newOverlay() *overlay {
	return &overlay{
		scalars: map[FieldKey]map[int64]float64{},
		indexes: map[FieldKey]map[int64]int64{},
	}
}

func (o *overlay) writeScalar(k FieldKey, idx int64, v float64) {
	m := o.scalars[k]
	if m == nil {
		m = map[int64]float64{}
		o.scalars[k] = m
	}
	m[idx] = v
}

func (o *overlay) writeIndex(k FieldKey, idx int64, v int64) {
	m := o.indexes[k]
	if m == nil {
		m = map[int64]int64{}
		o.indexes[k] = m
	}
	m[idx] = v
}

// ReduceBuffer accumulates one task's uncentered reduction contributions
// for one field, folded from the op's identity in iteration order.
type ReduceBuffer struct {
	Op     string
	Values map[int64]float64
}

// ShardResult is the outcome of running one color's shard of a parallel
// loop against a stable snapshot: the task's private writes (plain
// stores, centered reductions, and §5.1 guarded in-place reductions) and
// its uncentered reduction contributions. Nothing is applied to any
// machine — the caller decides how: the sequential Executor flushes
// shards in ascending color order and merges buffers after the launch;
// the distributed executor ships remote-owned pieces to their owners.
type ShardResult struct {
	Scalars    map[FieldKey]map[int64]float64
	Indexes    map[FieldKey]map[int64]int64
	Reductions map[FieldKey]*ReduceBuffer
}

// RunShard executes one color's task of pl. Reads see m's current region
// data plus the task's own earlier writes; m is not mutated, so several
// shards may run against the same machine (a launch-entry snapshot, or a
// distributed node's local arrays made current by a ghost exchange).
func RunShard(m *ir.Machine, parts map[string]*region.Partition, pl *ParallelLoop, color int) (*ShardResult, error) {
	iter, ok := parts[pl.IterSym]
	if !ok {
		return nil, fmt.Errorf("launch %s: unbound iteration partition %q", pl, pl.IterSym)
	}
	task := &taskExec{
		m:       m,
		parts:   parts,
		pl:      pl,
		color:   color,
		overlay: newOverlay(),
		buffers: map[FieldKey]*ReduceBuffer{},
	}
	var taskErr error
	iter.Sub(color).Each(func(k int64) bool {
		env := ir.Env{pl.Loop.Var: ir.IndexValue(k)}
		if err := task.runBody(pl.Loop.Stmts, env); err != nil {
			taskErr = fmt.Errorf("task %d, iteration %d: %w", color, k, err)
			return false
		}
		return true
	})
	if taskErr != nil {
		return nil, taskErr
	}
	return &ShardResult{
		Scalars:    task.overlay.scalars,
		Indexes:    task.overlay.indexes,
		Reductions: task.buffers,
	}, nil
}

// RunLaunch executes one parallel loop over all colors of its iteration
// partition.
func (ex *Executor) RunLaunch(pl *ParallelLoop) error {
	iter, ok := ex.Parts[pl.IterSym]
	if !ok {
		return fmt.Errorf("launch %s: unbound iteration partition %q", pl, pl.IterSym)
	}

	// Launch-entry snapshot of every region (tasks read this, not each
	// other's writes).
	snapshot := map[string]*region.Region{}
	for name, r := range ex.M.Regions {
		snapshot[name] = r.CloneData()
	}
	snapM := &ir.Machine{Regions: snapshot, Funcs: ex.M.Funcs, Partitions: ex.M.Partitions}

	perColor := make([]map[FieldKey]*ReduceBuffer, iter.NumSubs())
	for color := 0; color < iter.NumSubs(); color++ {
		res, err := RunShard(snapM, ex.Parts, pl, color)
		if err != nil {
			return err
		}
		// Flush in task order (overlapping aliased writes resolve
		// last-color-wins).
		FlushShard(ex.M, res)
		perColor[color] = res.Reductions
	}

	MergeShardReductions(ex.M, perColor)
	return nil
}

// FlushShard applies a shard's private writes (plain stores, centered
// reductions, and §5.1 guarded in-place reductions) to m's live
// regions. Reduction buffers are not touched — merge those with
// MergeShardReductions once every contributing shard has flushed.
func FlushShard(m *ir.Machine, res *ShardResult) {
	for k, vals := range res.Scalars {
		data := m.Regions[k.Region].Scalar(k.Field)
		for idx, v := range vals {
			data[idx] = v
		}
	}
	for k, vals := range res.Indexes {
		data := m.Regions[k.Region].Index(k.Field)
		for idx, v := range vals {
			data[idx] = v
		}
	}
}

// MergeShardReductions folds per-color reduction buffers into the live
// regions. The order is fixed: fields sorted by (region, field),
// elements ascending, and each element's per-color contributions in
// ascending color order seeded by the first contributing color. A
// distributed executor reproduces exactly this fold piecewise at each
// element's owner, which is why merged results are deterministic and
// node-count independent.
func MergeShardReductions(m *ir.Machine, perColor []map[FieldKey]*ReduceBuffer) {
	type elem struct {
		op   string
		idxs map[int64]bool
	}
	fields := map[FieldKey]*elem{}
	for _, bufs := range perColor {
		for k, buf := range bufs {
			e := fields[k]
			if e == nil {
				e = &elem{op: buf.Op, idxs: map[int64]bool{}}
				fields[k] = e
			}
			for idx := range buf.Values {
				e.idxs[idx] = true
			}
		}
	}
	keys := make([]FieldKey, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].Field < keys[j].Field
	})
	for _, k := range keys {
		e := fields[k]
		data := m.Regions[k.Region].Scalar(k.Field)
		idxs := make([]int64, 0, len(e.idxs))
		for idx := range e.idxs {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			var v float64
			first := true
			for _, bufs := range perColor {
				buf := bufs[k]
				if buf == nil {
					continue
				}
				c, ok := buf.Values[idx]
				if !ok {
					continue
				}
				if first {
					v = c
					first = false
				} else {
					v = ir.ApplyReduce(e.op, v, c)
				}
			}
			data[idx] = ir.ApplyReduce(e.op, data[idx], v)
		}
	}
}

// taskExec is the per-task interpreter.
type taskExec struct {
	m       *ir.Machine
	parts   map[string]*region.Partition
	pl      *ParallelLoop
	color   int
	overlay *overlay
	buffers map[FieldKey]*ReduceBuffer
}

// contains checks the containment of an access index in the task's
// subregion of the access partition.
func (t *taskExec) contains(info *AccessInfo, idx int64) error {
	p, ok := t.parts[info.Sym]
	if !ok {
		return fmt.Errorf("unbound partition %q", info.Sym)
	}
	if !p.Sub(t.color).Contains(idx) {
		return fmt.Errorf("access %s[%d].%s escapes subregion %s[%d] — unsound partitioning",
			info.Region, idx, info.Field, info.Sym, t.color)
	}
	return nil
}

func (t *taskExec) runBody(stmts []ir.Stmt, env ir.Env) error {
	for _, s := range stmts {
		if err := t.step(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (t *taskExec) readScalar(k FieldKey, idx int64) float64 {
	if m, ok := t.overlay.scalars[k]; ok {
		if v, ok := m[idx]; ok {
			return v
		}
	}
	return t.m.Regions[k.Region].Scalar(k.Field)[idx]
}

func (t *taskExec) readIndex(k FieldKey, idx int64) int64 {
	if m, ok := t.overlay.indexes[k]; ok {
		if v, ok := m[idx]; ok {
			return v
		}
	}
	return t.m.Regions[k.Region].Index(k.Field)[idx]
}

func (t *taskExec) step(s ir.Stmt, env ir.Env) error {
	switch st := s.(type) {
	case *ir.Load:
		info := t.pl.Access[s]
		if info == nil {
			return fmt.Errorf("%s: no access plan", st)
		}
		idxVal, err := indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if err := t.contains(info, idxVal); err != nil {
			return err
		}
		k := FieldKey{st.Region, st.Field}
		r := t.m.Regions[st.Region]
		kind, _ := r.FieldKindOf(st.Field)
		switch kind {
		case region.ScalarField:
			env[st.Var] = ir.ScalarValue(t.readScalar(k, idxVal))
		case region.IndexField:
			v := t.readIndex(k, idxVal)
			if v < 0 {
				env[st.Var] = ir.InvalidIndex()
			} else {
				env[st.Var] = ir.IndexValue(v)
			}
		default:
			return fmt.Errorf("%s: cannot load range field", st)
		}
		return nil

	case *ir.Store:
		info := t.pl.Access[s]
		if info == nil {
			return fmt.Errorf("%s: no access plan", st)
		}
		idxVal, err := indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		rhs, err := t.scalar(st.Rhs, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		k := FieldKey{st.Region, st.Field}

		if info.Guarded {
			// §5.1: apply only when this task owns the target; the
			// disjoint complete target partition guarantees exactly-once
			// across the launch.
			p, ok := t.parts[info.Sym]
			if !ok {
				return fmt.Errorf("%s: unbound partition %q", st, info.Sym)
			}
			if !p.Sub(t.color).Contains(idxVal) {
				return nil
			}
			old := t.readScalar(k, idxVal)
			t.overlay.writeScalar(k, idxVal, ir.ApplyReduce(string(st.Op), old, rhs))
			return nil
		}

		if err := t.contains(info, idxVal); err != nil {
			return err
		}

		if info.Buffered {
			buf := t.buffers[k]
			if buf == nil {
				buf = &ReduceBuffer{Op: string(st.Op), Values: map[int64]float64{}}
				t.buffers[k] = buf
			}
			old, seen := buf.Values[idxVal]
			if !seen {
				old = ir.ReduceIdentity(string(st.Op))
			}
			buf.Values[idxVal] = ir.ApplyReduce(string(st.Op), old, rhs)
			return nil
		}

		// Plain store or centered reduction: task-private read-modify-
		// write. Pointer fields take the raw value.
		r := t.m.Regions[st.Region]
		if kind, _ := r.FieldKindOf(st.Field); kind == region.IndexField {
			t.overlay.writeIndex(k, idxVal, int64(rhs))
			return nil
		}
		old := t.readScalar(k, idxVal)
		t.overlay.writeScalar(k, idxVal, ir.ApplyReduce(string(st.Op), old, rhs))
		return nil

	case *ir.LetScalar:
		v, err := t.scalar(st.Rhs, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		env[st.Var] = ir.ScalarValue(v)
		return nil

	case *ir.Apply:
		f, ok := t.m.Funcs[st.Func]
		if !ok {
			return fmt.Errorf("%s: unknown index function", st)
		}
		arg, err := indexOf(env, st.Arg)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if v, ok := f.Apply(arg); ok {
			env[st.Var] = ir.IndexValue(v)
		} else {
			env[st.Var] = ir.InvalidIndex()
		}
		return nil

	case *ir.Alias:
		v, ok := env[st.Src]
		if !ok {
			return fmt.Errorf("%s: unbound source", st)
		}
		env[st.Var] = v
		return nil

	case *ir.Inner:
		info := t.pl.Access[s]
		if info == nil {
			return fmt.Errorf("%s: no access plan", st)
		}
		idxVal, err := indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if err := t.contains(info, idxVal); err != nil {
			return err
		}
		iv := t.m.Regions[st.RangeRegion].Ranges(st.RangeField)[idxVal]
		for j := iv.Lo; j < iv.Hi; j++ {
			env[st.Var] = ir.IndexValue(j)
			if err := t.runBody(st.Body, env); err != nil {
				return err
			}
		}
		return nil

	case *ir.IfIn:
		v, ok := env[st.Idx]
		if !ok {
			return fmt.Errorf("%s: unbound index", st)
		}
		in := false
		if v.Valid {
			if r, isRegion := t.m.Regions[st.Space]; isRegion {
				in = v.I >= 0 && v.I < r.Size()
			} else if p, isPart := t.m.Partitions[st.Space]; isPart {
				in = p.UnionAll().Contains(v.I)
			} else {
				return fmt.Errorf("%s: unknown space", st)
			}
		}
		if in {
			return t.runBody(st.Then, env)
		}
		return t.runBody(st.Else, env)

	case *ir.IfCmp:
		l, err := t.scalar(st.L, env)
		if err != nil {
			return err
		}
		r, err := t.scalar(st.R, env)
		if err != nil {
			return err
		}
		var cond bool
		switch st.Op {
		case "==":
			cond = l == r
		case "!=":
			cond = l != r
		default:
			return fmt.Errorf("%s: unknown comparison", st)
		}
		if cond {
			return t.runBody(st.Then, env)
		}
		return t.runBody(st.Else, env)

	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (t *taskExec) scalar(e ir.ScalarExpr, env ir.Env) (float64, error) {
	switch x := e.(type) {
	case ir.Const:
		return x.V, nil
	case ir.VarExpr:
		v, ok := env[x.Name]
		if !ok {
			return 0, fmt.Errorf("unbound variable %q", x.Name)
		}
		return v.AsScalar(), nil
	case ir.CallExpr:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := t.scalar(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return ir.OpaqueFn(x.Func, args), nil
	case ir.BinExpr:
		l, err := t.scalar(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := t.scalar(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, nil
			}
			return l / r, nil
		default:
			return 0, fmt.Errorf("unknown operator %q", x.Op)
		}
	default:
		return 0, fmt.Errorf("unknown scalar expression %T", e)
	}
}

func indexOf(env ir.Env, name string) (int64, error) {
	v, ok := env[name]
	if !ok {
		return 0, fmt.Errorf("unbound variable %q", name)
	}
	if !v.IsIndex {
		return 0, fmt.Errorf("variable %q is not an index", name)
	}
	if !v.Valid {
		return 0, fmt.Errorf("variable %q holds an invalid index", name)
	}
	return v.I, nil
}
