// Package rewrite turns inferred + solved loops into their parallel form
// (Fig. 1b / Fig. 11c): every region access is redirected to a subregion
// of its partition, relaxed reductions receive membership guards, and an
// executor runs the task launches with parallel semantics — snapshot
// isolation between tasks, reduction buffers for uncentered reductions,
// and containment checks that turn any constraint violation into an
// error instead of silent corruption.
package rewrite

import (
	"fmt"
	"sort"

	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/solver"
)

// AccessInfo describes how one region-accessing IR statement executes in
// the parallel form.
type AccessInfo struct {
	// Sym is the canonical partition symbol whose color-j subregion the
	// task accesses.
	Sym    string
	Kind   infer.AccessKind
	Op     lang.ReduceOp
	Region string
	Field  string
	// Centered: indexed by the loop variable (or an alias).
	Centered bool
	// Guarded: §5.1 relaxation applies — the reduction executes only
	// when the target index falls in this task's subregion.
	Guarded bool
	// Buffered: an unrelaxed uncentered reduction that needs a
	// reduction buffer merged after the launch.
	Buffered bool
	// PrivateSym, when non-empty, names the §5.2 private sub-partition:
	// the buffer is only needed for the shared remainder.
	PrivateSym string
}

// ParallelLoop is one rewritten loop: the task launch of Fig. 1b.
type ParallelLoop struct {
	Loop    *ir.Loop
	IterSym string
	Relaxed bool
	// Access maps each region-accessing IR statement to its execution
	// plan.
	Access map[ir.Stmt]*AccessInfo
}

// Symbols returns the canonical partition symbols used by the launch
// (iteration symbol first, accesses sorted), deduplicated.
func (pl *ParallelLoop) Symbols() []string {
	seen := map[string]bool{pl.IterSym: true}
	out := []string{pl.IterSym}
	var rest []string
	for _, a := range pl.Access {
		if !seen[a.Sym] {
			seen[a.Sym] = true
			rest = append(rest, a.Sym)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Build assembles the parallel form of every loop from the optimizer's
// plans, the solver's solution, and the private sub-partition plan (may
// be nil).
func Build(plans []*optimize.LoopPlan, sol *solver.Solution, priv *optimize.PrivatePlan) []*ParallelLoop {
	var out []*ParallelLoop
	for _, plan := range plans {
		pl := &ParallelLoop{
			Loop:    plan.Res.Loop,
			IterSym: sol.Resolve(plan.Res.IterSym),
			Relaxed: plan.Relaxed,
			Access:  map[ir.Stmt]*AccessInfo{},
		}
		guarded := map[string]bool{}
		for _, sym := range plan.GuardedSyms {
			guarded[sym] = true
		}
		for _, a := range plan.Res.Accesses {
			info := &AccessInfo{
				Sym:      sol.Resolve(a.Sym),
				Kind:     a.Kind,
				Op:       a.Op,
				Region:   a.Region,
				Field:    a.Field,
				Centered: a.Centered,
			}
			if a.Kind == infer.ReduceAccess && !a.Centered {
				if plan.Relaxed && guarded[a.Sym] {
					info.Guarded = true
				} else {
					info.Buffered = true
					if priv != nil {
						info.PrivateSym = priv.PrivateOf[info.Sym]
					}
				}
			}
			pl.Access[a.Stmt] = info
		}
		out = append(out, pl)
	}
	return out
}

func (pl *ParallelLoop) String() string {
	mode := ""
	if pl.Relaxed {
		mode = " (relaxed)"
	}
	return fmt.Sprintf("parallel for (%s in %s[·])%s", pl.Loop.Var, pl.IterSym, mode)
}
