package rewrite

import (
	"strings"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/region"
	"autopart/internal/solver"
)

func compile(t *testing.T, src string, relax bool) ([]*optimize.LoopPlan, *solver.Solution, *optimize.PrivatePlan) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	results, err := infer.New(prog).InferProgram(loops)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*optimize.LoopPlan
	if relax {
		plans = optimize.Relax(results)
	} else {
		plans = make([]*optimize.LoopPlan, len(results))
		for i, r := range results {
			plans[i] = &optimize.LoopPlan{Res: r, Sys: r.Sys}
		}
	}
	clones := make([]*infer.Result, len(plans))
	for i, p := range plans {
		c := *p.Res
		c.Sys = p.Sys
		clones[i] = &c
	}
	sol, err := solver.SolveProgram(clones, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	priv := optimize.FindPrivateSubPartitions(plans, sol, nil)
	return plans, sol, priv
}

const reduceSrc = `
region Faces { c1: index(Cells), flux: scalar }
region Cells { res: scalar }
for f in Faces {
  Cells[Faces[f].c1].res += Faces[f].flux
}
`

func TestBuildUnrelaxedReduction(t *testing.T) {
	plans, sol, priv := compile(t, reduceSrc, false)
	pls := Build(plans, sol, priv)
	if len(pls) != 1 {
		t.Fatalf("launches = %d", len(pls))
	}
	pl := pls[0]
	if pl.Relaxed {
		t.Error("loop should not be relaxed")
	}
	var sawBuffered bool
	for _, info := range pl.Access {
		if info.Kind == infer.ReduceAccess {
			if !info.Buffered || info.Guarded {
				t.Errorf("reduce access plan = %+v", info)
			}
			if info.PrivateSym == "" {
				t.Error("private sub-partition should be attached")
			}
			sawBuffered = true
		}
	}
	if !sawBuffered {
		t.Fatal("no reduce access found")
	}
	if !strings.Contains(pl.String(), "parallel for") {
		t.Errorf("String = %q", pl.String())
	}
	syms := pl.Symbols()
	if len(syms) < 2 || syms[0] != pl.IterSym {
		t.Errorf("Symbols = %v", syms)
	}
}

func TestBuildRelaxedGuards(t *testing.T) {
	src := `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`
	plans, sol, priv := compile(t, src, true)
	pls := Build(plans, sol, priv)
	pl := pls[0]
	if !pl.Relaxed {
		t.Fatal("loop should be relaxed")
	}
	guarded := 0
	for _, info := range pl.Access {
		if info.Guarded {
			guarded++
			if info.Buffered {
				t.Error("guarded access must not be buffered")
			}
		}
	}
	if guarded != 2 {
		t.Errorf("guarded accesses = %d, want 2", guarded)
	}
}

// TestExecutorContainmentViolation binds a partition that is too small
// and checks the containment error fires.
func TestExecutorContainmentViolation(t *testing.T) {
	plans, sol, priv := compile(t, reduceSrc, false)
	pls := Build(plans, sol, priv)
	pl := pls[0]

	faces := region.New("Faces", 8)
	faces.AddIndexField("c1")
	faces.AddScalarField("flux")
	cells := region.New("Cells", 8)
	cells.AddScalarField("res")
	for i := range faces.Index("c1") {
		faces.Index("c1")[i] = int64(i)
	}
	m := ir.NewMachine().AddRegion(faces).AddRegion(cells)

	ex := NewExecutor(m)
	// Iteration partition: everything in color 0.
	ex.Bind(pl.IterSym, region.NewPartition("iter", faces, []geometry.IndexSet{
		geometry.Range(0, 8), {},
	}))
	// Bind every other symbol to an empty-ish partition to provoke the
	// containment check.
	for _, sym := range pl.Symbols()[1:] {
		var parent *region.Region
		for _, info := range pl.Access {
			if info.Sym == sym {
				parent = m.Regions[info.Region]
			}
		}
		if parent == nil {
			parent = faces
		}
		ex.Bind(sym, region.NewPartition(sym, parent, []geometry.IndexSet{
			geometry.Range(0, 1), {},
		}))
	}
	err := ex.RunLaunch(pl)
	if err == nil || !strings.Contains(err.Error(), "escapes subregion") {
		t.Fatalf("expected containment violation, got %v", err)
	}
}

func TestExecutorUnboundPartitions(t *testing.T) {
	plans, sol, priv := compile(t, reduceSrc, false)
	pl := Build(plans, sol, priv)[0]
	m := ir.NewMachine()
	ex := NewExecutor(m)
	if err := ex.RunLaunch(pl); err == nil || !strings.Contains(err.Error(), "unbound iteration partition") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecutorReductionBufferMerge(t *testing.T) {
	// Two tasks reduce into the same cell; the buffer must merge both
	// contributions exactly once.
	plans, sol, priv := compile(t, reduceSrc, false)
	pl := Build(plans, sol, priv)[0]

	faces := region.New("Faces", 4)
	faces.AddIndexField("c1")
	faces.AddScalarField("flux")
	cells := region.New("Cells", 2)
	cells.AddScalarField("res")
	copy(faces.Index("c1"), []int64{0, 0, 0, 1})
	copy(faces.Scalar("flux"), []float64{1, 2, 4, 8})
	m := ir.NewMachine().AddRegion(faces).AddRegion(cells)

	ex := NewExecutor(m)
	// Tasks split faces 0..1 / 2..3; both touch cell 0.
	ex.Bind(pl.IterSym, region.NewPartition("iter", faces, []geometry.IndexSet{
		geometry.Range(0, 2), geometry.Range(2, 4),
	}))
	full := []geometry.IndexSet{geometry.Range(0, 2), geometry.Range(0, 2)}
	fullFaces := []geometry.IndexSet{geometry.Range(0, 4), geometry.Range(0, 4)}
	for _, sym := range pl.Symbols()[1:] {
		var parent *region.Region
		for _, info := range pl.Access {
			if info.Sym == sym {
				parent = m.Regions[info.Region]
			}
		}
		if parent == cells {
			ex.Bind(sym, region.NewPartition(sym, cells, full))
		} else {
			ex.Bind(sym, region.NewPartition(sym, faces, fullFaces))
		}
	}
	if err := ex.RunLaunch(pl); err != nil {
		t.Fatal(err)
	}
	if got := cells.Scalar("res"); got[0] != 7 || got[1] != 8 {
		t.Errorf("res = %v, want [7 8]", got)
	}
}
