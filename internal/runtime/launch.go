// Package runtime models the task-based distributed runtime the paper's
// system executes on (a Legion substitute): index-space task launches
// with region requirements and privileges, Legion-style non-interference
// rules between launches, and reduction instances.
//
// The runtime does not move real data — package rewrite executes loops
// functionally — it provides the structural information (who accesses
// which subregions with which privilege) that the cost model in package
// sim turns into communication volume and time.
package runtime

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/infer"
	"autopart/internal/rewrite"
)

// Privilege is a Legion-style access privilege.
type Privilege int

// Privileges.
const (
	// ReadOnly: the task only reads the subregion.
	ReadOnly Privilege = iota
	// ReadWrite: the task reads and writes (exclusive).
	ReadWrite
	// WriteDiscard: the task overwrites without reading; no fetch of the
	// previous contents is needed.
	WriteDiscard
	// Reduce: the task contributes reductions with a single operator.
	Reduce
)

func (p Privilege) String() string {
	switch p {
	case ReadOnly:
		return "RO"
	case ReadWrite:
		return "RW"
	case WriteDiscard:
		return "WD"
	case Reduce:
		return "RED"
	default:
		return fmt.Sprintf("Privilege(%d)", int(p))
	}
}

// Requirement is one region requirement of an index launch: task j
// accesses subregion Sym[j] of Region with the given privilege on the
// listed fields.
type Requirement struct {
	Region string
	Fields []string
	Priv   Privilege
	Sym    string
	// ReduceOp is set for Reduce requirements.
	ReduceOp string
	// Guarded marks a §5.1 relaxed reduction: the target partition is
	// disjoint and complete, so no reduction instance is needed.
	Guarded bool
	// PrivateSym optionally names the §5.2 private sub-partition that
	// shrinks the reduction instance to the shared remainder.
	PrivateSym string
	// TouchedSym optionally names the partition of elements actually
	// written by the reduction; merge traffic moves only these, while
	// the instance (buffer) is sized by Sym. Hand-optimized codes that
	// over-allocate reduction instances (the paper's Circuit) set Sym to
	// the big allocation and TouchedSym to the tight image.
	TouchedSym string
}

func (r Requirement) String() string {
	extra := ""
	if r.Guarded {
		extra = " guarded"
	}
	if r.PrivateSym != "" {
		extra += " private=" + r.PrivateSym
	}
	return fmt.Sprintf("%s(%s.{%s} via %s%s)", r.Priv, r.Region, strings.Join(r.Fields, ","), r.Sym, extra)
}

// Launch is one index-space task launch (a parallel for over the colors
// of the iteration partition).
type Launch struct {
	Name    string
	IterSym string
	Reqs    []Requirement
	// WorkPerElement is the relative compute cost of one loop iteration
	// (used by the cost model); roughly the number of statements.
	WorkPerElement float64
	// WorkSym optionally names the partition whose subregion sizes weight
	// each task's compute (defaults to the iteration partition). SpMV
	// uses the matrix partition so rows are weighted by their nonzeros.
	WorkSym string
}

func (l *Launch) String() string {
	parts := make([]string, len(l.Reqs))
	for i, r := range l.Reqs {
		parts[i] = r.String()
	}
	return fmt.Sprintf("launch %s over %s: %s", l.Name, l.IterSym, strings.Join(parts, "; "))
}

// FromParallelLoop converts a rewritten loop into a launch. Per
// (partition, region, field) the access mix decides the privilege: reads
// only → RO; plain stores only → WriteDiscard; read+write mixes and
// centered reductions → RW; uncentered reductions → Reduce (guarded or
// buffered). Fields with the same privilege under the same partition
// aggregate into one requirement.
func FromParallelLoop(name string, pl *rewrite.ParallelLoop) *Launch {
	type fkey struct {
		sym, region, field string
		guarded            bool
	}
	type use struct {
		reads, writes, centeredRed int
		uncenteredRed              int
		op                         string
		privateSym                 string
	}
	uses := map[fkey]*use{}
	var forder []fkey
	work := 0.0

	for _, info := range pl.Access {
		work++
		k := fkey{info.Sym, info.Region, info.Field, info.Guarded}
		u, ok := uses[k]
		if !ok {
			u = &use{}
			uses[k] = u
			forder = append(forder, k)
		}
		switch info.Kind {
		case infer.ReadAccess, infer.RangeAccess:
			u.reads++
		case infer.WriteAccess:
			u.writes++
		case infer.ReduceAccess:
			if info.Centered {
				u.centeredRed++
			} else {
				u.uncenteredRed++
				u.op = string(info.Op)
				u.privateSym = info.PrivateSym
			}
		}
	}

	privOf := func(u *use) Privilege {
		switch {
		case u.uncenteredRed > 0:
			return Reduce
		case u.centeredRed > 0 || (u.reads > 0 && u.writes > 0):
			return ReadWrite
		case u.writes > 0:
			return WriteDiscard
		default:
			return ReadOnly
		}
	}

	type rkey struct {
		sym, region string
		priv        Privilege
		guarded     bool
		// op splits Reduce requirements by operator: a reduction instance
		// folds every field it covers with one redop, so fields reduced
		// with different operators under the same partition must land in
		// separate requirements. (Merging them handed the second field the
		// first field's fold operator — a += folded as max=, caught by
		// differential fuzzing.)
		op string
	}
	agg := map[rkey]*Requirement{}
	var order []rkey
	for _, k := range forder {
		u := uses[k]
		priv := privOf(u)
		rk := rkey{k.sym, k.region, priv, k.guarded, u.op}
		req, ok := agg[rk]
		if !ok {
			req = &Requirement{
				Region:  k.region,
				Priv:    priv,
				Sym:     k.sym,
				Guarded: k.guarded,
			}
			if priv == Reduce {
				req.ReduceOp = u.op
				req.PrivateSym = u.privateSym
			}
			agg[rk] = req
			order = append(order, rk)
		}
		found := false
		for _, f := range req.Fields {
			if f == k.field {
				found = true
				break
			}
		}
		if !found {
			req.Fields = append(req.Fields, k.field)
		}
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].sym != order[j].sym {
			return order[i].sym < order[j].sym
		}
		if order[i].region != order[j].region {
			return order[i].region < order[j].region
		}
		if order[i].priv != order[j].priv {
			return order[i].priv < order[j].priv
		}
		return order[i].op < order[j].op
	})
	l := &Launch{Name: name, IterSym: pl.IterSym, WorkPerElement: work}
	for _, k := range order {
		req := agg[k]
		sort.Strings(req.Fields)
		l.Reqs = append(l.Reqs, *req)
	}
	return l
}

// Dependence records that launch To must wait for launch From.
type Dependence struct {
	From, To int
	Region   string
	Field    string
	Reason   string
}

// Dependences computes the inter-launch dependences under Legion's
// non-interference rules: two launches are independent on a field unless
// one of them writes it, or they reduce with different operators, or a
// reduction is followed by a read. Requirements on provably disjoint
// field sets never interfere.
func Dependences(launches []*Launch) []Dependence {
	var deps []Dependence
	type lastUse struct {
		launch int
		priv   Privilege
		op     string
	}
	last := map[string][]lastUse{} // region.field -> uses since last writer

	for i, l := range launches {
		for _, req := range l.Reqs {
			for _, f := range req.Fields {
				key := req.Region + "." + f
				for _, prev := range last[key] {
					if interferes(prev.priv, prev.op, req.Priv, req.ReduceOp) {
						deps = append(deps, Dependence{
							From: prev.launch, To: i,
							Region: req.Region, Field: f,
							Reason: fmt.Sprintf("%s after %s", req.Priv, prev.priv),
						})
					}
				}
				last[key] = append(last[key], lastUse{i, req.Priv, req.ReduceOp})
			}
		}
	}
	return deps
}

func interferes(aPriv Privilege, aOp string, bPriv Privilege, bOp string) bool {
	switch {
	case aPriv == ReadOnly && bPriv == ReadOnly:
		return false
	case aPriv == Reduce && bPriv == Reduce:
		return aOp != bOp
	default:
		return true
	}
}

// privilege ordering note: WriteDiscard interferes like a write with
// everything (it clobbers data), which the default case covers.
