package runtime

import (
	"strings"
	"testing"

	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/rewrite"
	"autopart/internal/solver"
)

func buildLaunches(t *testing.T, src string, relax bool) []*Launch {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	results, err := infer.New(prog).InferProgram(loops)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*optimize.LoopPlan
	if relax {
		plans = optimize.Relax(results)
	} else {
		plans = make([]*optimize.LoopPlan, len(results))
		for i, r := range results {
			plans[i] = &optimize.LoopPlan{Res: r, Sys: r.Sys}
		}
	}
	clones := make([]*infer.Result, len(plans))
	for i, p := range plans {
		c := *p.Res
		c.Sys = p.Sys
		clones[i] = &c
	}
	sol, err := solver.SolveProgram(clones, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	priv := optimize.FindPrivateSubPartitions(plans, sol, nil)
	pls := rewrite.Build(plans, sol, priv)
	out := make([]*Launch, len(pls))
	for i, pl := range pls {
		out[i] = FromParallelLoop(lang.Pos{}.String(), pl)
	}
	return out
}

const twoLoopSrc = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func TestFromParallelLoopAggregation(t *testing.T) {
	launches := buildLaunches(t, twoLoopSrc, false)
	if len(launches) != 2 {
		t.Fatalf("launches = %d", len(launches))
	}
	l0 := launches[0]
	if l0.WorkPerElement <= 0 {
		t.Error("WorkPerElement should be positive")
	}
	// Loop 1 accesses: Particles.cell (RO), Cells.vel via two partitions
	// (RO), Particles.pos (RW, centered reduce).
	var ro, rw, red int
	for _, req := range l0.Reqs {
		switch req.Priv {
		case ReadOnly:
			ro++
		case ReadWrite:
			rw++
		case Reduce:
			red++
		}
	}
	if ro < 2 || rw != 1 || red != 0 {
		t.Errorf("privileges: ro=%d rw=%d red=%d\n%s", ro, rw, red, l0)
	}
	if !strings.Contains(l0.String(), "RW(Particles.{pos}") {
		t.Errorf("launch = %s", l0)
	}
}

func TestFromParallelLoopReduction(t *testing.T) {
	src := `
region Faces { c1: index(Cells), flux: scalar }
region Cells { res: scalar }
for f in Faces {
  Cells[Faces[f].c1].res += Faces[f].flux
}
`
	launches := buildLaunches(t, src, false)
	var red *Requirement
	for i := range launches[0].Reqs {
		if launches[0].Reqs[i].Priv == Reduce {
			red = &launches[0].Reqs[i]
		}
	}
	if red == nil {
		t.Fatalf("no reduce requirement: %s", launches[0])
	}
	if red.ReduceOp != "+=" {
		t.Errorf("op = %q", red.ReduceOp)
	}
	if red.PrivateSym == "" {
		t.Error("private sub-partition should be attached")
	}
	if red.Guarded {
		t.Error("unrelaxed reduction must not be guarded")
	}
}

func TestFromParallelLoopGuardedReduction(t *testing.T) {
	src := `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`
	launches := buildLaunches(t, src, true)
	guarded := 0
	for _, req := range launches[0].Reqs {
		if req.Priv == Reduce && req.Guarded {
			guarded++
			if req.PrivateSym != "" {
				t.Error("guarded reduction needs no private sub-partition")
			}
		}
	}
	if guarded == 0 {
		t.Fatalf("no guarded reduction: %s", launches[0])
	}
}

func TestDependences(t *testing.T) {
	launches := buildLaunches(t, twoLoopSrc, false)
	deps := Dependences(launches)
	// Loop 1 reads Cells.vel; loop 2 writes it (centered reduce = RW):
	// there must be a dependence 0 → 1 on Cells.vel.
	found := false
	for _, d := range deps {
		if d.From == 0 && d.To == 1 && d.Region == "Cells" && d.Field == "vel" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing dependence on Cells.vel: %v", deps)
	}
}

func TestDependencesNonInterference(t *testing.T) {
	a := &Launch{Name: "a", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: ReadOnly}}}
	b := &Launch{Name: "b", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: ReadOnly}}}
	if deps := Dependences([]*Launch{a, b}); len(deps) != 0 {
		t.Errorf("RO-RO should not interfere: %v", deps)
	}

	c := &Launch{Name: "c", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: Reduce, ReduceOp: "+="}}}
	d := &Launch{Name: "d", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: Reduce, ReduceOp: "+="}}}
	if deps := Dependences([]*Launch{c, d}); len(deps) != 0 {
		t.Errorf("same-op reductions should not interfere: %v", deps)
	}

	e := &Launch{Name: "e", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: Reduce, ReduceOp: "*="}}}
	if deps := Dependences([]*Launch{c, e}); len(deps) != 1 {
		t.Errorf("different-op reductions must interfere: %v", deps)
	}

	w := &Launch{Name: "w", Reqs: []Requirement{{Region: "R", Fields: []string{"x"}, Priv: ReadWrite}}}
	if deps := Dependences([]*Launch{a, w}); len(deps) != 1 {
		t.Errorf("read-then-write must interfere: %v", deps)
	}
	// Different fields never interfere.
	y := &Launch{Name: "y", Reqs: []Requirement{{Region: "R", Fields: []string{"y"}, Priv: ReadWrite}}}
	if deps := Dependences([]*Launch{w, y}); len(deps) != 0 {
		t.Errorf("different fields should not interfere: %v", deps)
	}
}

func TestPrivilegeString(t *testing.T) {
	if ReadOnly.String() != "RO" || ReadWrite.String() != "RW" || Reduce.String() != "RED" {
		t.Error("privilege strings wrong")
	}
	if !strings.Contains(Privilege(9).String(), "9") {
		t.Error("unknown privilege")
	}
}
