package runtime

import (
	"fmt"

	"autopart/internal/rewrite"
)

// Task pairs one launch's structural requirements with the rewritten
// loop that realizes it. The cost model consumes the Launch; the
// distributed executor consumes both — requirements drive the ghost
// exchange, the loop drives per-shard computation.
type Task struct {
	Launch *Launch
	Loop   *rewrite.ParallelLoop
}

// Plan is an executable task plan: the ordered launches of one main-loop
// iteration. Launches execute in order (all five benchmarks form a
// dependence chain; see Dependences).
type Plan struct {
	Tasks []Task
}

// NewPlan converts rewritten parallel loops into an executable plan,
// naming launches loop0..loopN-1.
func NewPlan(loops []*rewrite.ParallelLoop) *Plan {
	p := &Plan{}
	for i, pl := range loops {
		p.Tasks = append(p.Tasks, Task{
			Launch: FromParallelLoop(fmt.Sprintf("loop%d", i), pl),
			Loop:   pl,
		})
	}
	return p
}

// Launches returns the plan's launches in order (the cost model's input
// shape).
func (p *Plan) Launches() []*Launch {
	out := make([]*Launch, len(p.Tasks))
	for i, t := range p.Tasks {
		out[i] = t.Launch
	}
	return out
}
