// Package sim is the distributed-memory cost model: it turns the
// structural output of package runtime (index launches with region
// requirements over concrete partitions) into per-iteration execution
// time on a parameterized cluster, producing the weak-scaling series of
// the paper's evaluation (Fig. 14).
//
// The model charges, per node and per launch:
//
//   - compute proportional to the node's share of the iteration space
//     (with a fragmentation penalty modeling non-contiguous access, the
//     effect behind MiniAero's 2% gap in §6.3);
//   - communication for the remote part of every read requirement
//     (valid-instance tracking decides what is remote), with per-message
//     latency and a per-interval metadata overhead (the "sparsity
//     patterns inefficiently handled by the runtime" effect of §6.5);
//   - reduction-instance cost proportional to buffer size (shrunk by
//     §5.2 private sub-partitions) plus merge traffic to the owners.
//
// A launch's time is the maximum over nodes; launches in one main-loop
// iteration serialize (they form a dependence chain in all five
// benchmarks).
package sim

import (
	"fmt"

	"autopart/internal/geometry"
	"autopart/internal/par"
	"autopart/internal/region"
	"autopart/internal/runtime"
)

// Model holds the cluster parameters.
type Model struct {
	// ComputeRate is element-work units per second per node.
	ComputeRate float64
	// Bandwidth is NIC bytes/second per node.
	Bandwidth float64
	// Latency is seconds per message.
	Latency float64
	// BytesPerElem is the transfer size of one element of one field.
	BytesPerElem float64
	// FragOverhead is seconds per transferred interval (runtime copy
	// metadata; penalizes fragmented partitions).
	FragOverhead float64
	// BufferCostPerElem is seconds per reduction-buffer element
	// (allocation, zeroing, and merge scan).
	BufferCostPerElem float64
	// ComputeFragPenalty is extra work units per interval break in a
	// task's iteration set (non-contiguous kernel access).
	ComputeFragPenalty float64
}

// Default returns a Piz-Daint-flavored configuration: fast nodes, a
// fat network, non-trivial per-message latency.
func Default() Model {
	return Model{
		ComputeRate: 1e9,
		// Effective per-node interconnect bandwidth. Chosen so the
		// compute-to-transfer balance matches a GPU node on a Cray Aries
		// network: a P100 sustains far more element-work per second than
		// the NIC can move elements.
		Bandwidth:          2.5e9,
		Latency:            2e-6,
		BytesPerElem:       8,
		FragOverhead:       0.3e-6,
		BufferCostPerElem:  2e-9,
		ComputeFragPenalty: 2,
	}
}

// ModelFor returns a model whose fixed per-message and per-interval
// overheads are scaled for a reproduction running perNodeWork element-
// work units per node of an application whose real per-node main-loop
// iteration takes realIterSeconds (readable off the paper's plots:
// throughput-per-node at one node versus the per-node problem size).
//
// The fixed costs that shape the weak-scaling cliffs are per-copy
// runtime overheads (~50µs per remote copy for task-based runtimes —
// dependence analysis, instance creation, metadata) and per-interval
// sparsity metadata (~1µs). What matters is their ratio to the
// iteration time, so they shrink by simIter/realIter: Circuit iterates
// in ~1.7ms, making every copy worth ~3% of an iteration (the source of
// its Auto cliff), while MiniAero iterates in ~420ms and barely notices
// message counts. Bandwidth-proportional costs are relative to the
// compressed workload geometry and stay put.
func ModelFor(perNodeWork, realIterSeconds float64) Model {
	m := Default()
	simIter := perNodeWork / m.ComputeRate
	scale := simIter / realIterSeconds
	const perCopyOverhead = 50e-6
	const perIntervalOverhead = 1e-6
	m.Latency = perCopyOverhead * scale
	m.FragOverhead = perIntervalOverhead * scale
	return m
}

// FieldKey identifies a region field.
type FieldKey struct {
	Region, Field string
}

// State tracks the valid-instance distribution of every field: Owners[f]
// is the disjoint partition describing which node holds each element's
// up-to-date value.
type State struct {
	Owners map[FieldKey]*region.Partition
}

// NewState creates a state with the given initial owners. The helper
// OwnAll assigns one partition to all fields of a region.
func NewState() *State {
	return &State{Owners: map[FieldKey]*region.Partition{}}
}

// OwnerView derives the owner (valid-instance) distribution from a
// writing partition: the partition itself when already disjoint,
// otherwise its deterministic first-color disjointification. Owner maps
// must assign each element exactly one owner — fold routing, ghost
// need-sets, and the final gather all rely on it — while writing
// partitions may alias (every aliased writer computes the same value
// under snapshot semantics, so the first color's copy stands for all).
func OwnerView(p *region.Partition) *region.Partition {
	if p.IsDisjoint() {
		return p
	}
	return region.Disjointify(p.Name()+"_own", p)
}

// Own sets the owner partition of one field.
func (s *State) Own(regionName, field string, p *region.Partition) *State {
	s.Owners[FieldKey{regionName, field}] = p
	return s
}

// OwnAll sets the owner partition for several fields of a region.
func (s *State) OwnAll(regionName string, fields []string, p *region.Partition) *State {
	for _, f := range fields {
		s.Own(regionName, f, p)
	}
	return s
}

// NodeStats aggregates one node's costs within a launch.
type NodeStats struct {
	ComputeUnits float64
	BufferElems  float64
	BytesIn      float64
	BytesOut     float64
	MsgsIn       int
	MsgsOut      int
	FragsIn      int
	FragsOut     int
}

// Time converts the node's costs to seconds under the model.
func (n NodeStats) Time(m Model) float64 {
	t := n.ComputeUnits / m.ComputeRate
	t += n.BufferElems * m.BufferCostPerElem
	net := n.BytesIn
	if n.BytesOut > net {
		net = n.BytesOut
	}
	t += net / m.Bandwidth
	t += float64(n.MsgsIn+n.MsgsOut) * m.Latency
	t += float64(n.FragsIn+n.FragsOut) * m.FragOverhead
	return t
}

// TimeOverlapped converts the node's costs to seconds under a runtime
// that overlaps communication with compute: instead of summing the
// compute and network terms, the node pays the larger of the two plus
// the non-hideable fixed costs (buffer management stays on the compute
// side; per-message latency and fragment metadata are runtime work the
// overlap cannot hide). It is a lower bound on Time, reached when
// dependency-driven execution hides the slower of the two phases
// entirely — exec's measured OverlapNS says how much of the gap a real
// run closed.
func (n NodeStats) TimeOverlapped(m Model) float64 {
	compute := n.ComputeUnits/m.ComputeRate + n.BufferElems*m.BufferCostPerElem
	net := n.BytesIn
	if n.BytesOut > net {
		net = n.BytesOut
	}
	net /= m.Bandwidth
	t := compute
	if net > t {
		t = net
	}
	t += float64(n.MsgsIn+n.MsgsOut) * m.Latency
	t += float64(n.FragsIn+n.FragsOut) * m.FragOverhead
	return t
}

// LaunchStats is the cost of one launch.
type LaunchStats struct {
	Name       string
	Time       float64
	Nodes      []NodeStats
	TotalBytes float64
}

// IterationStats is the cost of one main-loop iteration.
type IterationStats struct {
	Time       float64
	TotalBytes float64
	Launches   []LaunchStats
}

// RunIteration prices one execution of the launches (in order) and
// updates the valid-instance state.
func (m Model) RunIteration(launches []*runtime.Launch, parts map[string]*region.Partition, st *State) (IterationStats, error) {
	var out IterationStats
	for _, l := range launches {
		ls, err := m.runLaunch(l, parts, st)
		if err != nil {
			return out, err
		}
		out.Time += ls.Time
		out.TotalBytes += ls.TotalBytes
		out.Launches = append(out.Launches, ls)
	}
	return out, nil
}

func (m Model) runLaunch(l *runtime.Launch, parts map[string]*region.Partition, st *State) (LaunchStats, error) {
	iter, ok := parts[l.IterSym]
	if !ok {
		return LaunchStats{}, fmt.Errorf("sim: launch %s: unbound iteration partition %q", l.Name, l.IterSym)
	}
	n := iter.NumSubs()
	nodes := make([]NodeStats, n)

	// Compute: each node runs its iterations, weighted by the work
	// partition when the launch names one (e.g. SpMV weights rows by
	// their nonzeros via the Mat partition).
	workPart := iter
	if l.WorkSym != "" {
		wp, ok := parts[l.WorkSym]
		if !ok {
			return LaunchStats{}, fmt.Errorf("sim: launch %s: unbound work partition %q", l.Name, l.WorkSym)
		}
		workPart = wp
	}
	par.Do(n, func(j int) {
		sub := workPart.Sub(j)
		nodes[j].ComputeUnits += l.WorkPerElement * float64(sub.Len())
		if frags := sub.NumIntervals(); frags > 1 {
			nodes[j].ComputeUnits += m.ComputeFragPenalty * float64(frags-1)
		}
	})

	for _, req := range l.Reqs {
		p, ok := parts[req.Sym]
		if !ok {
			return LaunchStats{}, fmt.Errorf("sim: launch %s: unbound partition %q", l.Name, req.Sym)
		}
		if p.NumSubs() != n {
			return LaunchStats{}, fmt.Errorf("sim: launch %s: color mismatch for %q", l.Name, req.Sym)
		}
		for _, field := range req.Fields {
			owner := st.Owners[FieldKey{req.Region, field}]
			if owner == nil {
				return LaunchStats{}, fmt.Errorf("sim: no owner for %s.%s", req.Region, field)
			}
			switch req.Priv {
			case runtime.WriteDiscard:
				// No fetch: previous contents are overwritten.
			case runtime.ReadOnly, runtime.ReadWrite:
				m.chargeFetch(nodes, p, owner)
			case runtime.Reduce:
				if req.Guarded {
					// §5.1: disjoint complete target, applied in place;
					// remote-owned elements still round-trip.
					m.chargeFetch(nodes, p, owner)
					m.chargeShip(nodes, p, owner)
					continue
				}
				var privPart *region.Partition
				if req.PrivateSym != "" {
					privPart = parts[req.PrivateSym]
				}
				touched := p
				if req.TouchedSym != "" {
					tp, ok := parts[req.TouchedSym]
					if !ok {
						return LaunchStats{}, fmt.Errorf("sim: launch %s: unbound touched partition %q", l.Name, req.TouchedSym)
					}
					touched = tp
				}
				m.chargeReduction(nodes, p, privPart, touched, owner)
			}
		}
		// Writes move ownership to the writing partition (disjointified:
		// the owner map must assign every element exactly one owner even
		// when the writing partition aliases).
		if req.Priv == runtime.ReadWrite || req.Priv == runtime.WriteDiscard {
			for _, field := range req.Fields {
				st.Owners[FieldKey{req.Region, field}] = OwnerView(p)
			}
		}
	}

	ls := LaunchStats{Name: l.Name, Nodes: nodes}
	for j := range nodes {
		if t := nodes[j].Time(m); t > ls.Time {
			ls.Time = t
		}
		ls.TotalBytes += nodes[j].BytesOut
	}
	return ls, nil
}

// piece is one color's share of a remote set: s = remote ∩ owner.Sub(k).
type piece struct {
	k     int
	bytes float64
	frags int
}

// remotePlan is the per-color result of the parallel set-arithmetic
// phase of a charge: the j-local remote volume plus the pieces owned by
// every other color. The sequential accumulate phase applies plans in
// color order, so float additions happen in exactly the order the
// sequential evaluator uses and the two modes stay bit-identical.
type remotePlan struct {
	bytes  float64
	frags  int
	pieces []piece
}

// planRemote computes, concurrently over colors, the remote part of
// get(j) relative to owner and its split over the other colors' owned
// sets. The heavy Subtract/Intersect interval arithmetic runs in the
// worker pool; only cheap additions remain for the caller's ordered
// accumulate phase.
func (m Model) planRemote(n int, get func(j int) geometry.IndexSet, owner *region.Partition) []remotePlan {
	plans := make([]remotePlan, n)
	par.Do(n, func(j int) {
		have := get(j)
		if have.Empty() {
			return
		}
		remote := have.Subtract(owner.Sub(j))
		if remote.Empty() {
			return
		}
		pl := remotePlan{
			bytes: float64(remote.Len()) * m.BytesPerElem,
			frags: remote.NumIntervals(),
		}
		// The executor plans its actual messages from the same split, so
		// predicted pieces and shipped pieces agree pair by pair.
		for _, pc := range region.SplitByOwner(remote, owner) {
			pl.pieces = append(pl.pieces, piece{
				k:     pc.Color,
				bytes: float64(pc.Set.Len()) * m.BytesPerElem,
				frags: pc.Set.NumIntervals(),
			})
		}
		plans[j] = pl
	})
	return plans
}

// chargeFetch prices pulling the remote part of each subregion from its
// owners.
func (m Model) chargeFetch(nodes []NodeStats, p, owner *region.Partition) {
	plans := m.planRemote(len(nodes), p.Sub, owner)
	for j, pl := range plans {
		if pl.frags == 0 {
			continue
		}
		nodes[j].BytesIn += pl.bytes
		nodes[j].FragsIn += pl.frags
		for _, pc := range pl.pieces {
			nodes[pc.k].BytesOut += pc.bytes
			nodes[pc.k].FragsOut += pc.frags
			nodes[pc.k].MsgsOut++
			nodes[j].MsgsIn++
		}
	}
}

// chargeShip prices pushing each subregion's remote-owned part back to
// its owners (write-back of guarded reductions).
func (m Model) chargeShip(nodes []NodeStats, p, owner *region.Partition) {
	plans := m.planRemote(len(nodes), p.Sub, owner)
	for j, pl := range plans {
		if pl.frags == 0 {
			continue
		}
		nodes[j].BytesOut += pl.bytes
		nodes[j].FragsOut += pl.frags
		for _, pc := range pl.pieces {
			nodes[pc.k].BytesIn += pc.bytes
			nodes[pc.k].FragsIn += pc.frags
			nodes[pc.k].MsgsIn++
			nodes[j].MsgsOut++
		}
	}
}

// chargeReduction prices an unrelaxed uncentered reduction: a buffer
// sized by the instance partition p (minus the private sub-partition
// when present) plus merge traffic for the touched elements owned
// elsewhere.
func (m Model) chargeReduction(nodes []NodeStats, p, privPart, touched, owner *region.Partition) {
	n := len(nodes)
	buffers := make([]float64, n)
	par.Do(n, func(j int) {
		sub := p.Sub(j)
		if sub.Empty() {
			return
		}
		buffer := sub
		if privPart != nil {
			buffer = sub.Subtract(privPart.Sub(j))
		}
		buffers[j] = float64(buffer.Len())
	})
	// Merge traffic moves the touched elements owned elsewhere; colors
	// whose instance is empty contribute nothing, matching the
	// sequential evaluator's early continue.
	plans := m.planRemote(n, func(j int) geometry.IndexSet {
		if p.Sub(j).Empty() {
			return geometry.IndexSet{}
		}
		return touched.Sub(j)
	}, owner)
	for j := 0; j < n; j++ {
		nodes[j].BufferElems += buffers[j]
		pl := plans[j]
		if pl.frags == 0 {
			continue
		}
		nodes[j].BytesOut += pl.bytes
		nodes[j].FragsOut += pl.frags
		for _, pc := range pl.pieces {
			nodes[pc.k].BytesIn += pc.bytes
			nodes[pc.k].FragsIn += pc.frags
			nodes[pc.k].MsgsIn++
			nodes[j].MsgsOut++
		}
	}
}
