package sim

import (
	"strings"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
	"autopart/internal/runtime"
)

// twoNodeSetup: region R of 8 elements, owners split 0..3 / 4..7.
func twoNodeSetup() (*region.Region, *region.Partition, *State) {
	r := region.New("R", 8)
	owner := region.Equal("owner", r, 2)
	st := NewState().Own("R", "x", owner)
	return r, owner, st
}

func TestLocalReadIsFree(t *testing.T) {
	m := Default()
	r, owner, st := twoNodeSetup()
	launch := &runtime.Launch{
		Name: "l", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"x"}, Priv: runtime.ReadOnly, Sym: "read"}},
	}
	parts := map[string]*region.Partition{
		"iter": owner,
		"read": owner, // aligned reads: no communication
	}
	_ = r
	stats, err := m.RunIteration([]*runtime.Launch{launch}, parts, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalBytes != 0 {
		t.Errorf("aligned read moved %v bytes", stats.TotalBytes)
	}
	if stats.Time <= 0 {
		t.Error("compute time should be positive")
	}
}

func TestRemoteReadCharged(t *testing.T) {
	m := Default()
	r, owner, st := twoNodeSetup()
	// Each node also reads one halo element from the other side.
	halo := region.NewPartition("halo", r, []geometry.IndexSet{
		geometry.FromIntervals(geometry.Interval{Lo: 0, Hi: 5}),
		geometry.FromIntervals(geometry.Interval{Lo: 3, Hi: 8}),
	})
	launch := &runtime.Launch{
		Name: "l", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"x"}, Priv: runtime.ReadOnly, Sym: "halo"}},
	}
	parts := map[string]*region.Partition{"iter": owner, "halo": halo}
	stats, err := m.RunIteration([]*runtime.Launch{launch}, parts, st)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 pulls element 4, node 1 pulls element 3: 2 elements total.
	if want := 2 * m.BytesPerElem; stats.TotalBytes != want {
		t.Errorf("TotalBytes = %v, want %v", stats.TotalBytes, want)
	}
	ns := stats.Launches[0].Nodes
	if ns[0].BytesIn != m.BytesPerElem || ns[0].BytesOut != m.BytesPerElem {
		t.Errorf("node 0 stats = %+v", ns[0])
	}
	if ns[0].MsgsIn != 1 || ns[0].MsgsOut != 1 {
		t.Errorf("node 0 messages = %+v", ns[0])
	}
}

func TestWriteMovesOwnership(t *testing.T) {
	m := Default()
	r, owner, st := twoNodeSetup()
	// A write through a shifted partition becomes the new owner.
	shifted := region.NewPartition("shifted", r, []geometry.IndexSet{
		geometry.Range(0, 2), geometry.Range(2, 8),
	})
	launch := &runtime.Launch{
		Name: "w", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"x"}, Priv: runtime.ReadWrite, Sym: "shifted"}},
	}
	parts := map[string]*region.Partition{"iter": owner, "shifted": shifted}
	if _, err := m.RunIteration([]*runtime.Launch{launch}, parts, st); err != nil {
		t.Fatal(err)
	}
	if got := st.Owners[FieldKey{"R", "x"}]; got != shifted {
		t.Errorf("owner after write = %v", got)
	}
}

func TestReductionBufferAndMergeTraffic(t *testing.T) {
	m := Default()
	r, owner, st := twoNodeSetup()
	// Both nodes reduce into the full region (all-shared, no private).
	full := region.NewPartition("full", r, []geometry.IndexSet{
		geometry.Range(0, 8), geometry.Range(0, 8),
	})
	launch := &runtime.Launch{
		Name: "red", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{
			Region: "R", Fields: []string{"x"}, Priv: runtime.Reduce,
			Sym: "full", ReduceOp: "+=",
		}},
	}
	parts := map[string]*region.Partition{"iter": owner, "full": full}
	stats, err := m.RunIteration([]*runtime.Launch{launch}, parts, st)
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Launches[0].Nodes
	// Each node buffers all 8 elements and ships the 4 it does not own.
	if ns[0].BufferElems != 8 || ns[1].BufferElems != 8 {
		t.Errorf("buffers = %v %v", ns[0].BufferElems, ns[1].BufferElems)
	}
	if ns[0].BytesOut != 4*m.BytesPerElem || ns[1].BytesOut != 4*m.BytesPerElem {
		t.Errorf("merge traffic = %v %v", ns[0].BytesOut, ns[1].BytesOut)
	}
}

func TestReductionPrivateSubPartitionShrinksBuffer(t *testing.T) {
	m := Default()
	r, owner, st := twoNodeSetup()
	// Reduce partitions overlap on elements 3..4; the private parts are
	// the rest.
	red := region.NewPartition("red", r, []geometry.IndexSet{
		geometry.Range(0, 5), geometry.Range(3, 8),
	})
	priv := region.NewPartition("priv", r, []geometry.IndexSet{
		geometry.Range(0, 3), geometry.Range(5, 8),
	})
	launch := &runtime.Launch{
		Name: "red", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{
			Region: "R", Fields: []string{"x"}, Priv: runtime.Reduce,
			Sym: "red", ReduceOp: "+=", PrivateSym: "priv",
		}},
	}
	parts := map[string]*region.Partition{"iter": owner, "red": red, "priv": priv}
	stats, err := m.RunIteration([]*runtime.Launch{launch}, parts, st)
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Launches[0].Nodes
	// Buffer shrinks to the shared remainder (2 elements each).
	if ns[0].BufferElems != 2 || ns[1].BufferElems != 2 {
		t.Errorf("buffers = %v %v", ns[0].BufferElems, ns[1].BufferElems)
	}
}

func TestGuardedReductionNoBuffer(t *testing.T) {
	m := Default()
	_, owner, st := twoNodeSetup()
	launch := &runtime.Launch{
		Name: "g", IterSym: "iter", WorkPerElement: 1,
		Reqs: []runtime.Requirement{{
			Region: "R", Fields: []string{"x"}, Priv: runtime.Reduce,
			Sym: "own", ReduceOp: "+=", Guarded: true,
		}},
	}
	parts := map[string]*region.Partition{"iter": owner, "own": owner}
	stats, err := m.RunIteration([]*runtime.Launch{launch}, parts, st)
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Launches[0].Nodes
	if ns[0].BufferElems != 0 || ns[1].BufferElems != 0 {
		t.Error("guarded reduction must not allocate buffers")
	}
	if stats.TotalBytes != 0 {
		t.Errorf("aligned guarded reduction moved %v bytes", stats.TotalBytes)
	}
}

func TestErrorsOnMissingBindings(t *testing.T) {
	m := Default()
	r := region.New("R", 4)
	owner := region.Equal("o", r, 2)
	st := NewState().Own("R", "x", owner)

	// Missing iteration partition.
	l := &runtime.Launch{Name: "l", IterSym: "nope"}
	if _, err := m.RunIteration([]*runtime.Launch{l}, map[string]*region.Partition{}, st); err == nil {
		t.Error("missing iteration partition should fail")
	}
	// Missing requirement partition.
	l2 := &runtime.Launch{
		Name: "l2", IterSym: "iter",
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"x"}, Priv: runtime.ReadOnly, Sym: "gone"}},
	}
	parts := map[string]*region.Partition{"iter": owner}
	if _, err := m.RunIteration([]*runtime.Launch{l2}, parts, st); err == nil {
		t.Error("missing requirement partition should fail")
	}
	// Missing owner.
	l3 := &runtime.Launch{
		Name: "l3", IterSym: "iter",
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"y"}, Priv: runtime.ReadOnly, Sym: "iter"}},
	}
	if _, err := m.RunIteration([]*runtime.Launch{l3}, parts, st); err == nil {
		t.Error("missing owner should fail")
	}
	// Color mismatch.
	l4 := &runtime.Launch{
		Name: "l4", IterSym: "iter",
		Reqs: []runtime.Requirement{{Region: "R", Fields: []string{"x"}, Priv: runtime.ReadOnly, Sym: "three"}},
	}
	parts["three"] = region.Equal("three", r, 3)
	if _, err := m.RunIteration([]*runtime.Launch{l4}, parts, st); err == nil {
		t.Error("color mismatch should fail")
	}
	// Missing work partition.
	l5 := &runtime.Launch{Name: "l5", IterSym: "iter", WorkSym: "gone"}
	if _, err := m.RunIteration([]*runtime.Launch{l5}, parts, st); err == nil {
		t.Error("missing work partition should fail")
	}
}

func TestFragmentationPenalties(t *testing.T) {
	m := Default()
	r := region.New("R", 100)
	contiguous := region.NewPartition("c", r, []geometry.IndexSet{geometry.Range(0, 100)})
	var b geometry.Builder
	for i := int64(0); i < 100; i += 2 {
		b.Add(i)
	}
	evens := b.Build()
	fragmented := region.NewPartition("f", r, []geometry.IndexSet{evens.Union(geometry.Range(1, 100).Subtract(evens))})
	_ = fragmented

	stC := NewState().Own("R", "x", contiguous)
	lc := &runtime.Launch{Name: "c", IterSym: "p", WorkPerElement: 1}
	partsC := map[string]*region.Partition{"p": contiguous}
	statC, err := m.RunIteration([]*runtime.Launch{lc}, partsC, stC)
	if err != nil {
		t.Fatal(err)
	}

	// Fragmented iteration set: 50 intervals.
	fragIter := region.NewPartition("fi", r, []geometry.IndexSet{evens})
	stF := NewState().Own("R", "x", contiguous)
	partsF := map[string]*region.Partition{"p": fragIter}
	statF, err := m.RunIteration([]*runtime.Launch{lc}, partsF, stF)
	if err != nil {
		t.Fatal(err)
	}
	// 50 elements over 50 intervals should cost more per element than
	// 100 contiguous ones in total compute? Compare per-element costs.
	perElemC := statC.Time / 100
	perElemF := statF.Time / 50
	if perElemF <= perElemC {
		t.Errorf("fragmentation penalty missing: %v vs %v", perElemF, perElemC)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "Auto", Points: []Point{
		{Nodes: 1, Throughput: 100},
		{Nodes: 4, Throughput: 90},
	}}
	if eff := s.Efficiency(); eff != 0.9 {
		t.Errorf("Efficiency = %v", eff)
	}
	if p, ok := s.At(4); !ok || p.Throughput != 90 {
		t.Errorf("At(4) = %v, %v", p, ok)
	}
	if _, ok := s.At(8); ok {
		t.Error("At(8) should miss")
	}
	if (Series{}).Efficiency() != 0 {
		t.Error("empty series efficiency")
	}
	if (Series{Points: []Point{{Nodes: 1, Throughput: 0}}}).Efficiency() != 0 {
		t.Error("zero-throughput efficiency")
	}

	f := Figure{ID: "14x", Title: "Test", WorkUnit: "elems/s", Series: []Series{s}}
	text := f.Render()
	for _, frag := range []string{"Figure 14x", "nodes", "Auto", "90.0%"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Render missing %q:\n%s", frag, text)
		}
	}
	if _, ok := f.SeriesByLabel("Auto"); !ok {
		t.Error("SeriesByLabel failed")
	}
	if _, ok := f.SeriesByLabel("Nope"); ok {
		t.Error("SeriesByLabel false positive")
	}
}

// TestTimeOverlapped pins the overlapped pricing: the compute and
// bandwidth terms collapse to their max instead of their sum, fixed
// per-message and per-interval costs stay additive, and the result
// never exceeds (and, with both terms nonzero, strictly undercuts) the
// bulk-synchronous Time.
func TestTimeOverlapped(t *testing.T) {
	m := Default()
	n := NodeStats{
		ComputeUnits: 2 * m.ComputeRate,       // 2s of compute
		BytesIn:      0.5 * m.Bandwidth,       // 0.5s of network
		BytesOut:     0.25 * m.Bandwidth,      // dominated by BytesIn
		BufferElems:  1 / m.BufferCostPerElem, // +1s on the compute side
		MsgsIn:       3, MsgsOut: 2,
		FragsIn: 4, FragsOut: 1,
	}
	fixed := 5*m.Latency + 5*m.FragOverhead
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-12 && d > -1e-12
	}
	if got := n.Time(m); !approx(got, 3.5+fixed) {
		t.Errorf("Time = %v, want %v", got, 3.5+fixed)
	}
	// Overlapped: max(compute 3s, net 0.5s) + fixed.
	if got := n.TimeOverlapped(m); !approx(got, 3+fixed) {
		t.Errorf("TimeOverlapped = %v, want %v", got, 3+fixed)
	}
	if n.TimeOverlapped(m) >= n.Time(m) {
		t.Error("overlapped pricing did not undercut the bulk-synchronous sum")
	}
	// Network-bound node: the max flips sides.
	nb := NodeStats{ComputeUnits: m.ComputeRate, BytesOut: 4 * m.Bandwidth}
	if got := nb.TimeOverlapped(m); !approx(got, 4) {
		t.Errorf("network-bound TimeOverlapped = %v, want 4", got)
	}
	// Degenerate cases coincide: no network, or no compute.
	cOnly := NodeStats{ComputeUnits: m.ComputeRate}
	if cOnly.Time(m) != cOnly.TimeOverlapped(m) {
		t.Error("compute-only node should price identically in both modes")
	}
}
