// Package sim_test holds the end-to-end parallel-vs-sequential
// differential tests. They live in an external test package so they can
// drive the app figure generators (which import sim) without a cycle.
package sim_test

import (
	"reflect"
	"testing"

	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/par"
	"autopart/internal/sim"
)

// figureDifferential evaluates a figure twice — fully sequential, then
// over a forced 4-worker pool — and requires bit-identical output: the
// same Series labels and float64-exact Points. This is the acceptance
// check for the deterministic-parallelism design (slot-indexed partition
// writes, two-phase plan/accumulate cost charging, input-ordered sweeps).
func figureDifferential(t *testing.T, name string, gen func() (sim.Figure, error)) {
	t.Helper()
	par.SetSequential(true)
	seq, err := gen()
	if err != nil {
		t.Fatalf("%s sequential: %v", name, err)
	}
	par.SetSequential(false)
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	parl, err := gen()
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if !reflect.DeepEqual(seq, parl) {
		t.Errorf("%s: parallel figure differs from sequential\nsequential:\n%s\nparallel:\n%s",
			name, seq.Render(), parl.Render())
	}
}

func TestFigure14aParallelBitIdentical(t *testing.T) {
	cfg := spmv.Config{RowsPerNode: 256, NnzPerRow: 8}
	model := sim.ModelFor(float64(cfg.RowsPerNode*cfg.NnzPerRow), spmv.RealIterSeconds)
	nodes := []int{1, 2, 4, 8}
	figureDifferential(t, "14a", func() (sim.Figure, error) {
		return spmv.Figure14a(cfg, model, nodes)
	})
}

func TestFigure14bParallelBitIdentical(t *testing.T) {
	cfg := stencil.Config{Width: 128, RowsPerNode: 8}
	model := sim.ModelFor(float64(cfg.PointsPerNode())*9, stencil.RealIterSeconds)
	nodes := []int{1, 2, 4}
	figureDifferential(t, "14b", func() (sim.Figure, error) {
		return stencil.Figure14b(cfg, model, nodes)
	})
}

// TestSweepOrderAndErrors pins the Sweep contract: results arrive in
// input order and the first error by input order wins.
func TestSweepOrderAndErrors(t *testing.T) {
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	got, err := sim.Sweep([]int{3, 1, 2}, func(n int) (int, error) {
		return n * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{30, 10, 20}) {
		t.Fatalf("Sweep results = %v", got)
	}

	boom := func(n int) (int, error) {
		if n%2 == 1 {
			return 0, errOdd(n)
		}
		return n, nil
	}
	if _, err := sim.Sweep([]int{2, 5, 4, 3}, boom); err == nil || err.Error() != "odd 5" {
		t.Fatalf("Sweep error = %v, want first-in-input-order odd 5", err)
	}
}

type errOdd int

func (e errOdd) Error() string { return "odd " + string(rune('0'+int(e))) }
