package sim

import (
	"fmt"
	"strings"
)

// Point is one weak-scaling measurement: throughput per node at a node
// count, in work units (nonzeros, points, cells, wires, zones) per
// second per node.
type Point struct {
	Nodes      int
	Throughput float64
	// Time is the simulated seconds per main-loop iteration.
	Time float64
}

// Series is one line of a weak-scaling plot.
type Series struct {
	Label  string
	Points []Point
}

// At returns the point for a node count.
func (s Series) At(nodes int) (Point, bool) {
	for _, p := range s.Points {
		if p.Nodes == nodes {
			return p, true
		}
	}
	return Point{}, false
}

// Efficiency returns the parallel efficiency at the largest node count:
// throughput-per-node there divided by throughput-per-node on one node
// (or the smallest measured count).
func (s Series) Efficiency() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	first := s.Points[0].Throughput
	last := s.Points[len(s.Points)-1].Throughput
	if first == 0 {
		return 0
	}
	return last / first
}

// Figure is a complete weak-scaling plot: several series over the same
// node counts (one of the subplots of Fig. 14).
type Figure struct {
	ID       string // e.g. "14d"
	Title    string
	WorkUnit string // "non-zeros/s", "wires/s", ...
	Series   []Series
}

// SeriesByLabel finds a series.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Render prints the figure as an aligned text table, one row per node
// count, one column per series — the same rows the paper plots.
func (f Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s (throughput per node, %s)\n", f.ID, f.Title, f.WorkUnit)
	if len(f.Series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%8s", "nodes")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %14s", s.Label)
	}
	sb.WriteByte('\n')
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%8d", f.Series[0].Points[i].Nodes)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, " %14.4g", s.Points[i].Throughput)
			} else {
				fmt.Fprintf(&sb, " %14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8s", "eff.")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %13.1f%%", 100*s.Efficiency())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// StandardNodeCounts is the node-count sweep of the paper's plots.
var StandardNodeCounts = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
