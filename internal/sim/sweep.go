package sim

import "autopart/internal/par"

// Sweep evaluates fn for every node count of a weak-scaling figure
// concurrently over the shared worker pool and returns the results in
// input order. Node counts of a figure are independent — each builds
// its own machine and valid-instance state — so the sweep is the
// outermost parallelism of the scaling driver. Results are placed by
// index, and on error the first failing node count (in input order) is
// reported, so output is identical to a sequential sweep.
func Sweep[T any](nodeCounts []int, fn func(nodes int) (T, error)) ([]T, error) {
	out := make([]T, len(nodeCounts))
	errs := make([]error, len(nodeCounts))
	par.Do(len(nodeCounts), func(i int) {
		out[i], errs[i] = fn(nodeCounts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
