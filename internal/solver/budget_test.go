package solver

import (
	"errors"
	"strings"
	"testing"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/lang"
)

// example2System builds the Fig. 7 system, which needs several
// backtracking nodes to resolve (P1 and P2 via the equal rule, P3 via a
// closed union).
func example2System() *constraint.System {
	sys := &constraint.System{}
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("P1")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P2"), Region: "S"})
	sys.AddSubset(constraint.Subset{L: img(v("P1"), "g", "S"), R: v("P2")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P3"), Region: "R"})
	sys.AddSubset(constraint.Subset{L: v("P1"), R: v("P3")})
	return sys
}

// TestSolveBudgetExhaustionSurfacesS001 proves that running out of
// search budget terminates with the S001 "no solution" diagnostic
// instead of hanging or panicking.
func TestSolveBudgetExhaustionSurfacesS001(t *testing.T) {
	s := New(nil, nil)
	s.SetBudget(1) // the first recursive step already exceeds this
	_, err := s.Solve(example2System())
	if err == nil {
		t.Fatal("expected budget-exhausted solve to fail")
	}
	var le *lang.Error
	if !errors.As(err, &le) || le.DiagCode() != "S001" {
		t.Errorf("want a structured S001 error, got: %#v", err)
	}
	if !strings.Contains(err.Error(), "no solution") {
		t.Errorf("want a no-solution message, got: %v", err)
	}
}

// TestSolveBudgetIsolatedBetweenRuns proves two properties of the
// budget plumbing: (1) each Solve gets a fresh countdown, so an
// exhausted run does not eat into later runs' budgets; and (2) a
// budget-caused failure is never recorded in the refuted-subtree memo —
// otherwise the retry of the identical system would fail on a memo hit
// even with a restored budget.
func TestSolveBudgetIsolatedBetweenRuns(t *testing.T) {
	s := New(nil, nil)
	s.SetBudget(2)
	if _, err := s.Solve(example2System()); err == nil {
		t.Fatal("expected exhausted solve to fail")
	}
	s.SetBudget(200000)
	prog, err := s.Solve(example2System())
	if err != nil {
		t.Fatalf("retry with restored budget failed (stale memo or corrupted budget): %v", err)
	}
	if len(prog.Stmts) == 0 {
		t.Error("retry produced an empty program")
	}
	// A third run on the same solver must still see the full budget.
	if _, err := s.Solve(example2System()); err != nil {
		t.Fatalf("third solve failed: %v", err)
	}
}

// TestSolveBudgetDefaultUnchangedByFailure proves an unsolvable system
// (genuine refutation, not exhaustion) leaves the configured budget
// intact for subsequent solvable systems.
func TestSolveBudgetDefaultUnchangedByFailure(t *testing.T) {
	s := New(nil, nil)
	bad := &constraint.System{}
	bad.AddPred(constraint.Pred{Kind: constraint.Part, E: v("Q1"), Region: "R"})
	bad.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("Q1"), Region: "R"})
	bad.AddPred(constraint.Pred{Kind: constraint.Part, E: v("Q2"), Region: "S"})
	bad.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("Q2")})
	bad.AddSubset(constraint.Subset{L: dpl.ImageMultiExpr{Of: v("Q1"), Func: "F", Region: "S"}, R: v("Q2")})
	if _, err := s.Solve(bad); err == nil {
		t.Fatal("expected unsolvable system to fail")
	}
	if _, err := s.Solve(example2System()); err != nil {
		t.Fatalf("solvable system failed after an unsolvable one: %v", err)
	}
}

// TestSolutionResolveCyclicCanonTerminates proves Resolve cannot loop
// forever on a malformed cyclic Canon map: the hop bound cuts the walk
// and the result is deterministic.
func TestSolutionResolveCyclicCanonTerminates(t *testing.T) {
	sol := &Solution{Canon: map[string]string{"a": "b", "b": "a"}}
	got1 := sol.Resolve("a")
	got2 := sol.Resolve("a")
	if got1 != got2 {
		t.Errorf("cyclic Resolve not deterministic: %q vs %q", got1, got2)
	}
	if got1 != "a" && got1 != "b" {
		t.Errorf("cyclic Resolve escaped the cycle: %q", got1)
	}
	// Self-loop and longer cycle.
	sol = &Solution{Canon: map[string]string{"x": "x", "p": "q", "q": "r", "r": "p"}}
	if got := sol.Resolve("x"); got != "x" {
		t.Errorf("self-loop Resolve = %q, want x", got)
	}
	if got := sol.Resolve("p"); got != "p" && got != "q" && got != "r" {
		t.Errorf("3-cycle Resolve escaped the cycle: %q", got)
	}
}
