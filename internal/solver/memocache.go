package solver

import (
	"sort"
	"sync"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
)

// MemoCache is a bounded, concurrency-safe store for the solver's three
// verdict memos — solvability (Algorithm 3 candidate checks),
// closed-conjunct proofs, and refuted search subtrees — shared across
// compiles. Verdicts are deterministic functions of (a) the constraint
// system's 128-bit content fingerprint and (b) the solving context (the
// external assumption system and symbol set), so entries stay valid for
// the lifetime of the process: the cache key combines both, and content
// fingerprints are independent of intern-table generations, so epoch
// reclamation of the dpl table never invalidates the cache.
//
// A Service injects one MemoCache into every compile it runs; the
// thousandth compile of a near-identical program then finds nearly all
// of its verdicts precomputed. A Solver constructed without an injected
// cache gets a private one sized so it never evicts within a compile,
// reproducing the old per-compile maps exactly.
//
// Bounding uses two rotating generations (a segmented LRU): inserts go
// to the current generation; when it fills, the previous generation is
// dropped (counted as evictions) and the current one takes its place.
// Lookups hit both generations and promote previous-generation hits, so
// hot entries survive rotation while stale ones age out. Memory is
// therefore bounded by ~2× the configured capacity.
type MemoCache struct {
	mu       sync.Mutex
	cap      int
	cur, old map[memoKey]bool
	// hits/misses count verdict-cache lookups (solvable + closed): every
	// miss is work a warmer cache would have skipped. nodeHits/nodeMisses
	// count refuted-subtree lookups separately — that memo is a
	// blocklist (only refutations are ever stored; absence is the steady
	// state for solvable subtrees), so its absences are not cache
	// failures and must not dilute the hit rate.
	hits, misses         uint64
	nodeHits, nodeMisses uint64
	evictions            uint64

	// The unification-round memo caches Algorithm 3's per-round greedy
	// winner (the committed rename set, or the absence of one) keyed by
	// the round's complete deterministic input: solving context plus
	// order-sensitive fingerprints of the accumulated and incoming
	// systems. Recompiles of a near-identical program replay the same
	// rounds, so a warm service skips subgraph matching and candidate
	// solvability checks entirely for every unchanged round. Bounded by
	// the same two-generation rotation as the verdict maps.
	unifyCur, unifyOld     map[memoKey]unifyWinner
	unifyHits, unifyMisses uint64
}

// unifyWinner is one memoized unification-round outcome. A nil Renames
// with ok=true records "no winner: stop unifying this system".
type unifyWinner struct {
	renames []renamePair
}

// renamePair is one from→to symbol rename, stored sorted for
// deterministic replay.
type renamePair struct{ from, to string }

// DefaultMemoCacheCap is the per-generation entry capacity used when
// NewMemoCache is given a non-positive capacity.
const DefaultMemoCacheCap = 1 << 18

// privateMemoCap sizes the private cache of a Solver constructed without
// an injected one: large enough that no realistic single compile ever
// rotates, preserving the exact behavior of the former unbounded maps.
const privateMemoCap = 1 << 20

// memoKind namespaces the three verdict families within one cache.
type memoKind uint8

const (
	memoSolvable memoKind = iota
	memoClosed
	memoNode
	memoUnify
)

// memoKey is one cache entry's identity: verdict family, solving-context
// fingerprint, and system fingerprint.
type memoKey struct {
	kind memoKind
	ctx  [2]uint64
	fp   [2]uint64
}

// NewMemoCache returns a cache bounded at roughly 2×capacity entries
// (capacity <= 0 selects DefaultMemoCacheCap).
func NewMemoCache(capacity int) *MemoCache {
	if capacity <= 0 {
		capacity = DefaultMemoCacheCap
	}
	return &MemoCache{cap: capacity, cur: map[memoKey]bool{}}
}

// lookup returns the cached verdict and whether it was present,
// promoting previous-generation hits into the current generation.
func (c *MemoCache) lookup(k memoKey) (verdict, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, hit := c.cur[k]; hit {
		c.countLocked(k.kind, true)
		return v, true
	}
	if v, hit := c.old[k]; hit {
		c.countLocked(k.kind, true)
		c.insertLocked(k, v)
		return v, true
	}
	c.countLocked(k.kind, false)
	return false, false
}

func (c *MemoCache) countLocked(kind memoKind, hit bool) {
	switch {
	case kind == memoNode && hit:
		c.nodeHits++
	case kind == memoNode:
		c.nodeMisses++
	case hit:
		c.hits++
	default:
		c.misses++
	}
}

// store records a verdict, rotating generations at capacity.
func (c *MemoCache) store(k memoKey, v bool) {
	c.mu.Lock()
	c.insertLocked(k, v)
	c.mu.Unlock()
}

func (c *MemoCache) insertLocked(k memoKey, v bool) {
	if len(c.cur) >= c.cap {
		c.evictions += uint64(len(c.old))
		c.old = c.cur
		c.cur = make(map[memoKey]bool, 1024)
	}
	c.cur[k] = v
}

// lookupUnify returns the memoized round winner for k, if present.
func (c *MemoCache) lookupUnify(k memoKey) (unifyWinner, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, hit := c.unifyCur[k]; hit {
		c.unifyHits++
		return w, true
	}
	if w, hit := c.unifyOld[k]; hit {
		c.unifyHits++
		c.insertUnifyLocked(k, w)
		return w, true
	}
	c.unifyMisses++
	return unifyWinner{}, false
}

// storeUnify records a round winner, rotating generations at capacity.
func (c *MemoCache) storeUnify(k memoKey, w unifyWinner) {
	c.mu.Lock()
	c.insertUnifyLocked(k, w)
	c.mu.Unlock()
}

func (c *MemoCache) insertUnifyLocked(k memoKey, w unifyWinner) {
	if c.unifyCur == nil {
		c.unifyCur = map[memoKey]unifyWinner{}
	}
	if len(c.unifyCur) >= c.cap {
		c.evictions += uint64(len(c.unifyOld))
		c.unifyOld = c.unifyCur
		c.unifyCur = make(map[memoKey]unifyWinner, 1024)
	}
	c.unifyCur[k] = w
}

// MemoCacheStats is a point-in-time snapshot of cache activity.
type MemoCacheStats struct {
	// Hits and Misses count verdict-cache lookups (solvability and
	// closed-conjunct proofs) across all compiles sharing the cache
	// since construction.
	Hits, Misses uint64
	// NodeHits and NodeMisses count refuted-subtree blocklist lookups.
	// They are reported separately because only refutations are stored:
	// a blocklist absence is the expected steady state, not avoidable
	// work, so these do not feed HitRate.
	NodeHits, NodeMisses uint64
	// UnifyHits and UnifyMisses count unification-round memo lookups;
	// every hit skips one round of subgraph matching and candidate
	// solvability checks.
	UnifyHits, UnifyMisses uint64
	// Evictions counts entries dropped by generation rotation.
	Evictions uint64
	// Entries is the current live entry count (both generations).
	Entries int
}

// HitRate returns Hits/(Hits+Misses), or 0 with no lookups.
func (s MemoCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *MemoCache) Stats() MemoCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoCacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		NodeHits:    c.nodeHits,
		NodeMisses:  c.nodeMisses,
		UnifyHits:   c.unifyHits,
		UnifyMisses: c.unifyMisses,
		Evictions:   c.evictions,
		Entries:     len(c.cur) + len(c.old) + len(c.unifyCur) + len(c.unifyOld),
	}
}

// contextFingerprint derives the solving-context half of every memo key:
// a 128-bit digest of the external assumption system and the external
// symbol set. Two Solvers with equal contexts produce interchangeable
// verdicts for equal systems; two different contexts never share keys,
// which is what makes one process-wide cache sound across arbitrary
// programs.
func contextFingerprint(external *constraint.System, externalSyms []string, partialFns map[string]bool) [2]uint64 {
	fp := external.Fingerprint128()
	syms := append([]string(nil), externalSyms...)
	sort.Strings(syms)
	for _, sym := range syms {
		h := dpl.HashString128(sym)
		fp[0] = fp[0]*0x9e3779b97f4a7c15 ^ h[0]
		fp[1] = fp[1]*0xc2b2ae3d27d4eb4f ^ h[1]
	}
	// The declared-partial function set changes prover verdicts (L7 is
	// refused on partial functions), so it is part of the solving
	// context a shared cache keys on. Mixed with distinct multipliers so
	// "h external" and "h partial" cannot collide.
	if len(partialFns) > 0 {
		fns := make([]string, 0, len(partialFns))
		for fn, partial := range partialFns {
			if partial {
				fns = append(fns, fn)
			}
		}
		sort.Strings(fns)
		for _, fn := range fns {
			h := dpl.HashString128(fn)
			fp[0] = fp[0]*0xc2b2ae3d27d4eb4f ^ h[1]
			fp[1] = fp[1]*0x9e3779b97f4a7c15 ^ h[0]
		}
	}
	return fp
}
