package solver

import (
	"sync"
	"testing"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
)

func mk(i int) memoKey {
	return memoKey{kind: memoSolvable, fp: [2]uint64{uint64(i), uint64(i) * 31}}
}

// TestMemoCacheBoundedRotation pins the segmented-LRU bound: the cache
// never holds more than 2×cap entries, rotation counts evictions, and
// recently touched entries survive a rotation.
func TestMemoCacheBoundedRotation(t *testing.T) {
	c := NewMemoCache(4)
	for i := 0; i < 4; i++ {
		c.store(mk(i), true)
	}
	// Touch entry 0 after filling: it sits in the (full) current
	// generation. The next store rotates; entry 0 moves to the old
	// generation, and a subsequent lookup must still find and promote it.
	c.store(mk(4), false) // rotation: cur was full
	if v, ok := c.lookup(mk(0)); !ok || !v {
		t.Fatalf("entry 0 lost across one rotation: ok=%v v=%v", ok, v)
	}
	st := c.Stats()
	if st.Entries > 8 {
		t.Errorf("entries = %d, want <= 2*cap = 8", st.Entries)
	}
	// Overflow until the original old generation drops.
	for i := 5; i < 20; i++ {
		c.store(mk(i), true)
	}
	st = c.Stats()
	if st.Entries > 8 {
		t.Errorf("entries = %d after overflow, want <= 8", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded despite overflow")
	}
}

// TestMemoCacheStats checks hit/miss accounting and HitRate.
func TestMemoCacheStats(t *testing.T) {
	c := NewMemoCache(16)
	if _, ok := c.lookup(mk(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.store(mk(1), true)
	for i := 0; i < 9; i++ {
		if v, ok := c.lookup(mk(1)); !ok || !v {
			t.Fatal("stored entry missing")
		}
	}
	st := c.Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 9/1", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got != 0.9 {
		t.Errorf("HitRate = %v, want 0.9", got)
	}
}

// TestMemoCacheConcurrent hammers the cache from many goroutines under
// the race detector.
func TestMemoCacheConcurrent(t *testing.T) {
	c := NewMemoCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := mk((g*131 + i) % 200)
				if _, ok := c.lookup(k); !ok {
					c.store(k, i%2 == 0)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}

// TestContextFingerprintSeparation proves different solving contexts
// never share memo keys: same system fingerprint, different external
// assumptions or symbol sets, different context halves.
func TestContextFingerprintSeparation(t *testing.T) {
	empty := &constraint.System{}
	withPred := &constraint.System{}
	withPred.Preds = append(withPred.Preds, constraint.Pred{
		Kind: constraint.Disj, E: dpl.Var{Name: "px"}, Region: "R",
	})

	base := contextFingerprint(empty, nil, nil)
	if got := contextFingerprint(empty, nil, nil); got != base {
		t.Fatal("context fingerprint not deterministic")
	}
	if got := contextFingerprint(withPred, nil, nil); got == base {
		t.Error("different external systems share a context fingerprint")
	}
	if got := contextFingerprint(empty, []string{"px"}, nil); got == base {
		t.Error("different external symbol sets share a context fingerprint")
	}
	// Symbol order must not matter.
	a := contextFingerprint(empty, []string{"pa", "pb"}, nil)
	b := contextFingerprint(empty, []string{"pb", "pa"}, nil)
	if a != b {
		t.Error("context fingerprint depends on external symbol order")
	}
}

// TestSharedCacheVerdictReuse runs two solvers over the same system
// through one shared cache: the second must answer its solvable checks
// from the cache (per-solver MemoMisses == 0) and return the same
// verdict.
func TestSharedCacheVerdictReuse(t *testing.T) {
	sys := &constraint.System{}
	sys.Preds = append(sys.Preds,
		constraint.Pred{Kind: constraint.Part, E: dpl.Var{Name: "p1"}, Region: "R"},
		constraint.Pred{Kind: constraint.Disj, E: dpl.Var{Name: "p1"}, Region: "R"},
	)

	cache := NewMemoCache(1024)
	s1 := NewWithCache(nil, nil, cache)
	v1 := s1.solvable(sys)
	if st := s1.Stats(); st.MemoMisses != 1 || st.MemoHits != 0 {
		t.Fatalf("cold solver: hits/misses = %d/%d, want 0/1", st.MemoHits, st.MemoMisses)
	}

	s2 := NewWithCache(nil, nil, cache)
	v2 := s2.solvable(sys)
	if v1 != v2 {
		t.Fatalf("verdicts differ across shared-cache solvers: %v vs %v", v1, v2)
	}
	if st := s2.Stats(); st.MemoHits != 1 || st.MemoMisses != 0 {
		t.Errorf("warm solver: hits/misses = %d/%d, want 1/0", st.MemoHits, st.MemoMisses)
	}

	// A solver with a different external context must NOT reuse the
	// verdict entry (regardless of what its own verdict is).
	s3 := NewWithCache(nil, []string{"p9"}, cache)
	s3.solvable(sys)
	if st := s3.Stats(); st.MemoHits != 0 {
		t.Errorf("cross-context solver reused a foreign memo entry (hits=%d)", st.MemoHits)
	}
}

// TestMemoCacheDefaultCap covers the capacity fallback.
func TestMemoCacheDefaultCap(t *testing.T) {
	c := NewMemoCache(0)
	if c.cap != DefaultMemoCacheCap {
		t.Errorf("cap = %d, want %d", c.cap, DefaultMemoCacheCap)
	}
	for i := 0; i < 10; i++ {
		c.store(mk(i), true)
	}
	if c.Stats().Entries != 10 {
		t.Errorf("entries = %d, want 10", c.Stats().Entries)
	}
}
