// Package solver implements the constraint solver of §3: Algorithm 2's
// resolution procedure (synthesizing a DPL expression for every partition
// symbol, guided by the preimage, closed-union, and depth-ordered equal
// rules, with backtracking and a final lemma-based consistency check) and
// Algorithm 3's unification of isomorphic constraint subgraphs across
// loops, including unification against externally provided partitions
// (§3.3).
package solver

import (
	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/lang"
)

// Solution is the output of the solver: one DPL statement per partition
// symbol (aliases included), plus the bookkeeping the rewriter needs.
type Solution struct {
	// Program is the synthesized DPL program after CSE, in dependency
	// order; external symbols are free (provided at evaluation time).
	Program dpl.Program
	// Canon maps every original partition symbol to its canonical symbol
	// after unification (identity for non-unified symbols). Canonical
	// symbols are either defined by Program or external.
	Canon map[string]string
	// System is the final combined obligation system (after unification
	// and substitution of the solution).
	System *constraint.System
	// ExternalSyms are the fixed symbols (§3.3) the program may
	// reference but does not define.
	ExternalSyms []string
}

// Resolve returns the canonical symbol for an original symbol.
func (s *Solution) Resolve(sym string) string {
	for {
		next, ok := s.Canon[sym]
		if !ok || next == sym {
			return sym
		}
		sym = next
	}
}

// extCandidate is a closed expression appearing in the external
// assumptions that can stand in for a fresh partition: e.g. the Circuit
// hint DISJ(pn_private ∪ pn_shared) ∧ COMP(pn_private ∪ pn_shared, rn)
// makes pn_private ∪ pn_shared a candidate for any symbol that must be a
// disjoint and/or complete partition of rn.
type extCandidate struct {
	expr   dpl.Expr
	region string
	disj   bool
	comp   bool
}

// Solver holds the fixed context of one solving run.
type Solver struct {
	external     *constraint.System
	externalSyms map[string]bool
	extCands     []extCandidate
	// budget caps backtracking work; solving is reported as failed if
	// exceeded (never hit by realistic systems).
	budget int
}

// New creates a solver with external assumptions (may be nil).
func New(external *constraint.System, externalSyms []string) *Solver {
	s := &Solver{
		external:     external,
		externalSyms: map[string]bool{},
		budget:       200000,
	}
	if external == nil {
		s.external = &constraint.System{}
	}
	for _, sym := range externalSyms {
		s.externalSyms[sym] = true
	}
	s.collectExternalCandidates()
	return s
}

// collectExternalCandidates gathers the compound expressions of external
// DISJ/COMP assertions as assignment candidates (reusing user partitions
// is the paper's fewest-partitions heuristic applied to §3.3 hints).
func (s *Solver) collectExternalCandidates() {
	prover := constraint.NewProver(s.external)
	partOf := s.external.PartOf()
	seen := map[string]*extCandidate{}
	var order []string
	for _, p := range s.external.Preds {
		if p.Kind == constraint.Part {
			continue
		}
		if _, isVar := p.E.(dpl.Var); isVar {
			continue // bare symbols are reachable through unification
		}
		region, ok := dpl.RegionOf(p.E, partOf)
		if !ok {
			continue
		}
		key := dpl.Key(p.E)
		c, dup := seen[key]
		if !dup {
			c = &extCandidate{
				expr:   p.E,
				region: region,
				disj:   prover.ProveDisj(p.E),
				comp:   prover.ProveComp(p.E, region),
			}
			seen[key] = c
			order = append(order, key)
		}
	}
	for _, key := range order {
		s.extCands = append(s.extCands, *seen[key])
	}
	// External symbols themselves are candidates too (PENNANT's Hint2
	// provides rs_p/rz_p to be reused directly as iteration partitions).
	// Compound expressions stay ahead so e.g. the complete Circuit union
	// wins over its incomplete halves.
	for _, p := range s.external.Preds {
		if p.Kind != constraint.Part {
			continue
		}
		if _, ok := p.E.(dpl.Var); !ok {
			continue
		}
		key := dpl.Key(p.E)
		if _, dup := seen[key]; dup {
			continue
		}
		c := &extCandidate{
			expr:   p.E,
			region: p.Region,
			disj:   prover.ProveDisj(p.E),
			comp:   prover.ProveComp(p.E, p.Region),
		}
		if !c.disj && !c.comp {
			continue // nothing an assignment could gain from it
		}
		seen[key] = c
		s.extCands = append(s.extCands, *c)
	}
}

// closed reports whether an expression contains only external symbols
// (the solver's notion of "closed": everything in it is already
// computable).
func (s *Solver) closed(e dpl.Expr) bool {
	for _, v := range dpl.FreeVars(e) {
		if !s.externalSyms[v] {
			return false
		}
	}
	return true
}

// equation is one P = E assignment of the partial solution.
type equation struct {
	name string
	expr dpl.Expr
}

// Solve resolves a single constraint system: it synthesizes a DPL
// expression for every non-external partition symbol such that the
// strengthened system passes the consistency check. The returned program
// is in resolution order, before CSE.
func (s *Solver) Solve(sys *constraint.System) (dpl.Program, error) {
	work := sys.Clone()
	// The external assumptions participate as hypotheses but their
	// symbols are never assigned.
	eqs, ok := s.solve(work, nil, s.unresolved(work))
	if !ok {
		return dpl.Program{}, lang.Errorf("S001", lang.Span{}, "solver: no solution for constraint system:\n%s", sys)
	}
	var prog dpl.Program
	for _, eq := range eqs {
		prog.Append(eq.name, eq.expr)
	}
	return prog, nil
}

// unresolved lists the symbols of c that still need expressions.
func (s *Solver) unresolved(c *constraint.System) []string {
	var out []string
	for _, sym := range c.Symbols() {
		if !s.externalSyms[sym] {
			out = append(out, sym)
		}
	}
	return out
}

// depths computes depth(P) per Algorithm 2: the length of the longest
// chain of subset constraints E1 ⊆ ... ⊆ Ek ⊆ P, where closed
// expressions have depth 0. Cycles (possible after unification) are
// cut by bounding iteration.
func (s *Solver) depths(c *constraint.System, syms []string) map[string]int {
	depth := make(map[string]int, len(syms))
	for _, sym := range syms {
		depth[sym] = 0
	}
	exprDepth := func(e dpl.Expr) int {
		d := 0
		for _, v := range dpl.FreeVars(e) {
			if dv, ok := depth[v]; ok && dv > d {
				d = dv
			}
		}
		return d
	}
	for iter := 0; iter <= len(syms); iter++ {
		changed := false
		for _, sub := range c.Subsets {
			to, ok := sub.R.(dpl.Var)
			if !ok || s.externalSyms[to.Name] {
				continue
			}
			if d := exprDepth(sub.L) + 1; d > depth[to.Name] {
				depth[to.Name] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return depth
}

// solve is Algorithm 2: pick a remaining symbol, attempt an equation,
// recurse; backtrack on failure. syms is the current unresolved symbol
// list (every assignment is a closed expression, so the list simply
// loses the assigned name at each step).
func (s *Solver) solve(c *constraint.System, sol []equation, syms []string) ([]equation, bool) {
	if s.budget <= 0 {
		return nil, false
	}
	s.budget--

	// Early pruning: a fully-closed conjunct can only be discharged by
	// the lemmas and the current hypotheses; if it is already
	// unprovable, no further assignment will save this branch. Verified
	// conjuncts are consumed so each is proven once per path — this is
	// what keeps backtracking tractable on many-loop programs.
	if !s.consumeClosedConjuncts(c) {
		return nil, false
	}

	partOf := s.combinedPartOf(c)

	try := func(name string, expr dpl.Expr) ([]equation, bool) {
		next := c.Clone()
		next.Subst(name, expr)
		rest := make([]string, 0, len(syms)-1)
		for _, v := range syms {
			if v != name {
				rest = append(rest, v)
			}
		}
		return s.solve(next, append(sol, equation{name, expr}), rest)
	}

	// Rule 1 (lines 11–15): image(P, f, R) ⊆ E with closed E resolves P
	// to a preimage (L14). Generalized IMAGE is excluded (L14 invalid).
	for _, sub := range c.Subsets {
		imgExpr, ok := sub.L.(dpl.ImageExpr)
		if !ok || !s.closed(sub.R) {
			continue
		}
		p, ok := imgExpr.Of.(dpl.Var)
		if !ok || s.externalSyms[p.Name] {
			continue
		}
		srcRegion, ok := partOf[p.Name]
		if !ok {
			continue
		}
		cand := dpl.PreimageExpr{Region: srcRegion, Func: imgExpr.Func, Of: sub.R}
		if next, ok := try(p.Name, cand); ok {
			return next, true
		}
	}

	// Rule 2 (lines 16–18): a symbol whose incoming subset constraints
	// all have closed left-hand sides resolves to their union (L13).
	for _, sym := range syms {
		into := c.SubsetsInto(sym)
		if len(into) == 0 {
			continue
		}
		allClosed := true
		lowers := make([]dpl.Expr, 0, len(into))
		seen := map[string]bool{}
		for _, sub := range into {
			if !s.closed(sub.L) {
				allClosed = false
				break
			}
			if key := dpl.Key(sub.L); !seen[key] {
				seen[key] = true
				lowers = append(lowers, sub.L)
			}
		}
		if !allClosed {
			continue
		}
		if next, ok := try(sym, dpl.UnionAll(lowers)); ok {
			return next, true
		}
	}

	// Rule 3 (lines 20–26): assign equal partitions, deepest symbols
	// first. All DISJ symbols (at every depth) come before merely-COMP
	// ones: disjointness flows right-to-left through subset constraints
	// (insight 3), so disjoint reduction targets must resolve before the
	// iteration partitions whose preimage unions depend on them.
	depth := s.depths(c, syms)
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := maxDepth; d >= 0; d-- {
		for _, sym := range syms {
			if depth[sym] != d || !c.HasPred(constraint.Disj, sym) {
				continue
			}
			region, ok := partOf[sym]
			if !ok {
				continue
			}
			// External compound expressions with the required properties
			// come first: reusing user partitions beats creating fresh
			// ones.
			for _, cand := range s.extCands {
				if cand.region != region || !cand.disj {
					continue
				}
				if c.HasPred(constraint.Comp, sym) && !cand.comp {
					continue
				}
				if next, ok := try(sym, cand.expr); ok {
					return next, true
				}
			}
			if next, ok := try(sym, dpl.EqualExpr{Region: region}); ok {
				return next, true
			}
		}
	}
	for d := maxDepth; d >= 0; d-- {
		for _, sym := range syms {
			if depth[sym] != d || !c.HasPred(constraint.Comp, sym) || c.HasPred(constraint.Disj, sym) {
				continue
			}
			region, ok := partOf[sym]
			if !ok {
				continue
			}
			for _, cand := range s.extCands {
				if cand.region != region || !cand.comp {
					continue
				}
				if next, ok := try(sym, cand.expr); ok {
					return next, true
				}
			}
			if next, ok := try(sym, dpl.EqualExpr{Region: region}); ok {
				return next, true
			}
		}
	}

	// No rule applies: the system is resolved iff no symbols remain and
	// every conjunct is entailed (lines 27–29).
	if len(syms) > 0 {
		return nil, false
	}
	if ok, _ := constraint.CheckResolved(c, s.external); !ok {
		return nil, false
	}
	return sol, true
}

// consumeClosedConjuncts verifies every conjunct without free
// non-external symbols against the current hypotheses, removing the
// verified ones from c (they never change again, so proving each once
// per path suffices). It reports false when any closed conjunct is
// unprovable.
func (s *Solver) consumeClosedConjuncts(c *constraint.System) bool {
	var closedSubIdx, closedPredIdx []int
	for i, sub := range c.Subsets {
		if s.closed(sub.L) && s.closed(sub.R) {
			closedSubIdx = append(closedSubIdx, i)
		}
	}
	for i, p := range c.Preds {
		if _, isVar := p.E.(dpl.Var); isVar {
			// Predicates on bare external symbols are assumptions;
			// PART-on-Var stays as region-typing info.
			continue
		}
		if s.closed(p.E) && p.Kind != constraint.Part {
			closedPredIdx = append(closedPredIdx, i)
		}
	}
	if len(closedSubIdx) == 0 && len(closedPredIdx) == 0 {
		return true
	}
	combined := c.Clone()
	combined.And(s.external)
	// Goal predicates must not serve as their own hypotheses: build the
	// predicate prover over the system without the candidates.
	rest := &constraint.System{Subsets: combined.Subsets}
	candidate := map[int]bool{}
	for _, i := range closedPredIdx {
		candidate[i] = true
	}
	for i, p := range combined.Preds {
		if i < len(c.Preds) && candidate[i] {
			continue
		}
		rest.Preds = append(rest.Preds, p)
	}
	predProver := constraint.NewProver(rest)
	for _, i := range closedPredIdx {
		if !predProver.ProvePred(c.Preds[i]) {
			return false
		}
	}
	base := constraint.NewProver(combined)
	for _, i := range closedSubIdx {
		if !base.WithoutSubset(c.Subsets[i]).ProveSubset(c.Subsets[i]) {
			return false
		}
	}
	// All verified: consume them.
	if len(closedPredIdx) > 0 {
		keep := c.Preds[:0]
		next := 0
		for i, p := range c.Preds {
			if next < len(closedPredIdx) && closedPredIdx[next] == i {
				next++
				continue
			}
			keep = append(keep, p)
		}
		c.Preds = keep
	}
	if len(closedSubIdx) > 0 {
		keep := c.Subsets[:0]
		next := 0
		for i, sub := range c.Subsets {
			if next < len(closedSubIdx) && closedSubIdx[next] == i {
				next++
				continue
			}
			keep = append(keep, sub)
		}
		c.Subsets = keep
	}
	return true
}

// combinedPartOf merges PART information from the working system and the
// external assumptions.
func (s *Solver) combinedPartOf(c *constraint.System) map[string]string {
	partOf := c.PartOf()
	for sym, region := range s.external.PartOf() {
		if _, exists := partOf[sym]; !exists {
			partOf[sym] = region
		}
	}
	return partOf
}
