// Package solver implements the constraint solver of §3: Algorithm 2's
// resolution procedure (synthesizing a DPL expression for every partition
// symbol, guided by the preimage, closed-union, and depth-ordered equal
// rules, with backtracking and a final lemma-based consistency check) and
// Algorithm 3's unification of isomorphic constraint subgraphs across
// loops, including unification against externally provided partitions
// (§3.3).
//
// The solver's data-plane is built for speed without changing output:
// expressions are hash-consed (package dpl), the working system is
// mutated in place under an undo trail so a backtracking node costs
// O(delta) instead of a full copy, solvability verdicts are memoized by
// canonical system fingerprint, and Algorithm 3's per-round candidate
// checks run in parallel on the shared worker pool with a deterministic
// winner.
package solver

import (
	"sync"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/lang"
)

// Solution is the output of the solver: one DPL statement per partition
// symbol (aliases included), plus the bookkeeping the rewriter needs.
type Solution struct {
	// Program is the synthesized DPL program after CSE, in dependency
	// order; external symbols are free (provided at evaluation time).
	Program dpl.Program
	// Canon maps every original partition symbol to its canonical symbol
	// after unification (identity for non-unified symbols). Canonical
	// symbols are either defined by Program or external.
	Canon map[string]string
	// System is the final combined obligation system (after unification
	// and substitution of the solution).
	System *constraint.System
	// ExternalSyms are the fixed symbols (§3.3) the program may
	// reference but does not define.
	ExternalSyms []string
	// Stats reports the solver's cache and search activity.
	Stats SolveStats
}

// Resolve returns the canonical symbol for an original symbol. Canon
// chains are followed with a hop bound so a malformed cyclic map
// (a→b→a) terminates deterministically instead of looping forever.
func (s *Solution) Resolve(sym string) string {
	for hops := 0; hops <= len(s.Canon); hops++ {
		next, ok := s.Canon[sym]
		if !ok || next == sym {
			return sym
		}
		sym = next
	}
	return sym
}

// SolveStats counts cache and search activity across one Solver's
// lifetime (every solvable check and solve run).
type SolveStats struct {
	// MemoHits/MemoMisses count solvability-verdict lookups by system
	// fingerprint (Algorithm 3's candidate checks).
	MemoHits, MemoMisses int
	// ClosedHits/ClosedMisses count closed-conjunct verdict lookups
	// (Algorithm 2's per-node early pruning).
	ClosedHits, ClosedMisses int
	// NodeHits counts search nodes cut by the refuted-subtree memo.
	NodeHits int
	// Nodes counts backtracking search nodes visited.
	Nodes int
	// UnifyNS is wall time in nanoseconds spent inside UnifyAndSolve
	// (Algorithm 3: graph builds, matching, and candidate checks).
	UnifyNS int64
	// GraphBuilds and GraphExtends count accumulated-graph cache
	// activity: full BuildGraph constructions versus incremental
	// Extended growths. A healthy run extends far more than it builds.
	GraphBuilds, GraphExtends int
	// UnifyRoundHits/UnifyRoundMisses count unification-round memo
	// lookups: a hit replays a previously committed rename set (or a
	// previously established "nothing left to unify") without building
	// graphs, matching subgraphs, or running candidate checks.
	UnifyRoundHits, UnifyRoundMisses int
}

// extCandidate is a closed expression appearing in the external
// assumptions that can stand in for a fresh partition: e.g. the Circuit
// hint DISJ(pn_private ∪ pn_shared) ∧ COMP(pn_private ∪ pn_shared, rn)
// makes pn_private ∪ pn_shared a candidate for any symbol that must be a
// disjoint and/or complete partition of rn.
type extCandidate struct {
	expr   dpl.Expr
	region string
	disj   bool
	comp   bool
}

// Solver holds the fixed context of one solving run. The caches are
// guarded by mu: parallel unification checks share them.
type Solver struct {
	external     *constraint.System
	externalSyms map[string]bool
	// extMask is the union of the external symbols' Bloom bits
	// (dpl.SymBit). An expression whose free-variable mask has bits
	// outside extMask certainly contains a non-external symbol, so the
	// hot closedness scans skip it without touching the intern table.
	extMask uint64
	// externalIDs is the same membership as externalSyms over dense
	// interned symbol ids (dpl.SymID): the search's closedness and
	// externality tests hit this bitset instead of hashing strings.
	externalIDs dpl.SymSet
	extCands    []extCandidate
	// budget caps backtracking work per Solve call; solving is reported
	// as failed if exceeded (never hit by realistic systems). Each
	// search carries its own countdown, so concurrent and nested
	// searches never corrupt the configured cap.
	budget int

	// cache stores the three verdict memos — solvability (Algorithm 3's
	// candidate checks), closed-conjunct proofs, and refuted search
	// subtrees — keyed by (ctx, system fingerprint). It is either a
	// private per-compile cache (New) or a cross-compile cache shared by
	// a compile service (NewWithCache); either way the verdicts are
	// deterministic functions of the key, so sharing is sound.
	cache *MemoCache
	// ctx is this solver's half of every memo key: a fingerprint of the
	// external assumption system, symbol set, and declared-partial
	// function set (see contextFingerprint).
	ctx [2]uint64
	// ctxSyms retains the external symbol list so SetPartialFns can
	// recompute ctx.
	ctxSyms []string
	// partialFns names the program's declared-partial index functions;
	// provers built by the search must refuse totality lemmas on them.
	partialFns map[string]bool

	mu    sync.Mutex
	stats SolveStats
}

// New creates a solver with external assumptions (may be nil) and a
// private memo cache.
func New(external *constraint.System, externalSyms []string) *Solver {
	return NewWithCache(external, externalSyms, nil)
}

// NewWithCache creates a solver whose verdict memos live in the given
// cross-compile cache; a nil cache selects a private one sized to never
// evict within a compile (the classic per-compile behavior).
func NewWithCache(external *constraint.System, externalSyms []string, cache *MemoCache) *Solver {
	if cache == nil {
		cache = NewMemoCache(privateMemoCap)
	}
	s := &Solver{
		external:     external,
		externalSyms: map[string]bool{},
		budget:       200000,
		cache:        cache,
	}
	if external == nil {
		s.external = &constraint.System{}
	}
	s.ctxSyms = append([]string(nil), externalSyms...)
	s.ctx = contextFingerprint(s.external, externalSyms, nil)
	for _, sym := range externalSyms {
		s.externalSyms[sym] = true
		s.extMask |= dpl.SymBit(sym)
		s.externalIDs.Add(dpl.SymID(sym))
	}
	s.collectExternalCandidates()
	// Pre-warm the external system's indexes (both the string view the
	// provers read and the id view the search reads): parallel
	// solvability checks hit them concurrently, and the lazy builds are
	// not themselves synchronized.
	s.external.RegionOfSym("")
	s.external.RegionOfSymID(-1)
	return s
}

// SetPartialFns records the program's declared-partial index functions.
// It must be called before solving: provers refuse totality-dependent
// lemmas (L7) on these functions, so the set changes verdicts. The memo
// context fingerprint is recomputed to include it (a shared cross-
// compile cache must not serve a total-world verdict to a program whose
// functions are partial), and the external candidate proofs are redone
// under the new set.
func (s *Solver) SetPartialFns(fns map[string]bool) {
	s.partialFns = fns
	s.ctx = contextFingerprint(s.external, s.ctxSyms, fns)
	s.extCands = nil
	s.collectExternalCandidates()
}

// SetBudget overrides the per-Solve backtracking node cap. Each Solve
// call hands its search a private countdown initialized from the
// configured cap, so an exhausted run never dents the budget of later
// runs; the setter exists for tests and for callers tuning the cap to
// adversarial inputs.
func (s *Solver) SetBudget(n int) { s.budget = n }

// Stats returns a snapshot of the solver's cache and search counters.
func (s *Solver) Stats() SolveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// collectExternalCandidates gathers the compound expressions of external
// DISJ/COMP assertions as assignment candidates (reusing user partitions
// is the paper's fewest-partitions heuristic applied to §3.3 hints).
func (s *Solver) collectExternalCandidates() {
	prover := constraint.NewProver(s.external).SetPartialFns(s.partialFns)
	partOf := s.external.PartOf()
	seen := map[string]*extCandidate{}
	var order []string
	for _, p := range s.external.Preds {
		if p.Kind == constraint.Part {
			continue
		}
		if _, isVar := p.E.(dpl.Var); isVar {
			continue // bare symbols are reachable through unification
		}
		region, ok := dpl.RegionOf(p.E, partOf)
		if !ok {
			continue
		}
		key := dpl.Key(p.E)
		c, dup := seen[key]
		if !dup {
			c = &extCandidate{
				expr:   p.E,
				region: region,
				disj:   prover.ProveDisj(p.E),
				comp:   prover.ProveComp(p.E, region),
			}
			seen[key] = c
			order = append(order, key)
		}
	}
	for _, key := range order {
		s.extCands = append(s.extCands, *seen[key])
	}
	// External symbols themselves are candidates too (PENNANT's Hint2
	// provides rs_p/rz_p to be reused directly as iteration partitions).
	// Compound expressions stay ahead so e.g. the complete Circuit union
	// wins over its incomplete halves.
	for _, p := range s.external.Preds {
		if p.Kind != constraint.Part {
			continue
		}
		if _, ok := p.E.(dpl.Var); !ok {
			continue
		}
		key := dpl.Key(p.E)
		if _, dup := seen[key]; dup {
			continue
		}
		c := &extCandidate{
			expr:   p.E,
			region: p.Region,
			disj:   prover.ProveDisj(p.E),
			comp:   prover.ProveComp(p.E, p.Region),
		}
		if !c.disj && !c.comp {
			continue // nothing an assignment could gain from it
		}
		seen[key] = c
		s.extCands = append(s.extCands, *c)
	}
}

// closedIDs reports whether an expression contains only external
// symbols (the solver's notion of "closed": everything in it is already
// computable), given its free-variable Bloom mask and interned id list
// (System.PredFvIDs/SubsetFvIDs). Mask bits outside extMask prove a
// non-external free symbol without any per-symbol work; the exact check
// is bitset probes on dense ids instead of string-map lookups.
func (s *Solver) closedIDs(mask uint64, ids []int32) bool {
	if mask&^s.extMask != 0 {
		return false
	}
	for _, id := range ids {
		if !s.externalIDs.Has(id) {
			return false
		}
	}
	return true
}

// equation is one P = E assignment of the partial solution.
type equation struct {
	name string
	expr dpl.Expr
}

// symRef is an unresolved symbol carried through the search as both its
// name (for equations and candidate expressions) and its interned id
// (for every membership and index lookup on the hot path).
type symRef struct {
	name string
	id   int32
}

// search is one backtracking run of Algorithm 2 over one working system.
// It owns its budget countdown and undo trail, so concurrent searches
// (the parallel Algorithm 3 checks) are fully isolated; only the memo
// lookups go through the shared, locked Solver caches.
type search struct {
	s     *Solver
	c     *constraint.System
	trail *constraint.Trail
	// budget is the remaining node allowance for this search.
	budget int
	// exhausted is set once the budget hits zero: failures after that
	// point may be budget-caused, so they are never recorded as
	// refutations in the node memo.
	exhausted bool
	// local stat counters, folded into Solver.stats when the search ends.
	nodes, closedHits, closedMisses, nodeHits int
}

// newSearch prepares a search over a private clone of sys.
func (s *Solver) newSearch(sys *constraint.System, budget int) *search {
	work := sys.Clone()
	return &search{s: s, c: work, trail: constraint.NewTrail(work), budget: budget}
}

// finish folds the search's local counters into the solver stats.
func (sr *search) finish() {
	sr.s.mu.Lock()
	sr.s.stats.Nodes += sr.nodes
	sr.s.stats.ClosedHits += sr.closedHits
	sr.s.stats.ClosedMisses += sr.closedMisses
	sr.s.stats.NodeHits += sr.nodeHits
	sr.s.mu.Unlock()
}

// Solve resolves a single constraint system: it synthesizes a DPL
// expression for every non-external partition symbol such that the
// strengthened system passes the consistency check. The returned program
// is in resolution order, before CSE.
func (s *Solver) Solve(sys *constraint.System) (dpl.Program, error) {
	// The external assumptions participate as hypotheses but their
	// symbols are never assigned.
	sr := s.newSearch(sys, s.budget)
	eqs, ok := sr.solve(nil, s.unresolved(sr.c))
	sr.finish()
	if !ok {
		return dpl.Program{}, lang.Errorf("S001", lang.Span{}, "solver: no solution for constraint system:\n%s", sys)
	}
	var prog dpl.Program
	for _, eq := range eqs {
		prog.Append(eq.name, eq.expr)
	}
	return prog, nil
}

// unresolved lists the symbols of c that still need expressions, in
// Symbols' sorted order (which fixes the search's candidate order).
func (s *Solver) unresolved(c *constraint.System) []symRef {
	var out []symRef
	for _, sym := range c.Symbols() {
		if !s.externalSyms[sym] {
			out = append(out, symRef{name: sym, id: dpl.SymID(sym)})
		}
	}
	return out
}

// depths computes depth(P) per Algorithm 2: the length of the longest
// chain of subset constraints E1 ⊆ ... ⊆ Ek ⊆ P, where closed
// expressions have depth 0. Cycles (possible after unification) are
// cut by bounding iteration.
func (sr *search) depths(syms []symRef) map[int32]int {
	c := sr.c
	depth := make(map[int32]int, len(syms))
	for _, sym := range syms {
		depth[sym.id] = 0
	}
	idsDepth := func(ids []int32) int {
		d := 0
		for _, v := range ids {
			if dv, ok := depth[v]; ok && dv > d {
				d = dv
			}
		}
		return d
	}
	// A left-hand side whose mask shares no bits with the unresolved
	// symbols certainly has depth 0 — skip its free-variable walk.
	var symsMask uint64
	for _, sym := range syms {
		symsMask |= dpl.SymBit(sym.name)
	}
	subMasks := c.SubsetMasks()
	subFvIDs := c.SubsetFvIDs()
	for iter := 0; iter <= len(syms); iter++ {
		changed := false
		for i, sub := range c.Subsets {
			if _, ok := sub.R.(dpl.Var); !ok {
				continue
			}
			// A Var's interned fv list is exactly its own id.
			to := subFvIDs[i][1][0]
			if sr.s.externalIDs.Has(to) {
				continue
			}
			d := 1
			if subMasks[i][0]&symsMask != 0 {
				d = idsDepth(subFvIDs[i][0]) + 1
			}
			if d > depth[to] {
				depth[to] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return depth
}

// regionOf resolves a symbol's region from the working system's PART
// predicates, falling back to the external assumptions.
func (sr *search) regionOf(sym symRef) (string, bool) {
	if r, ok := sr.c.RegionOfSymID(sym.id); ok {
		return r, true
	}
	return sr.s.external.RegionOfSymID(sym.id)
}

// solve is Algorithm 2: pick a remaining symbol, attempt an equation,
// recurse; backtrack on failure. syms is the current unresolved symbol
// list (every assignment is a closed expression, so the list simply
// loses the assigned name at each step). The working system is mutated
// in place; every failed attempt is rewound through the trail, so on
// failure the system is exactly as the caller left it.
func (sr *search) solve(sol []equation, syms []symRef) ([]equation, bool) {
	if sr.budget <= 0 {
		sr.exhausted = true
		return nil, false
	}
	sr.budget--
	sr.nodes++
	c, s := sr.c, sr.s

	// Early pruning: a fully-closed conjunct can only be discharged by
	// the lemmas and the current hypotheses; if it is already
	// unprovable, no further assignment will save this branch. Verified
	// conjuncts are consumed so each is proven once per path — this is
	// what keeps backtracking tractable on many-loop programs.
	entry := sr.trail.Mark()
	if !sr.consumeClosedConjuncts() {
		sr.trail.UndoTo(entry)
		return nil, false
	}

	// Refuted-subtree memo: if an earlier (completed) exploration of this
	// exact conjunct set failed — in this compile or, with a shared
	// cache, any previous one — every rule candidate below fails again.
	fp := c.Fingerprint128()
	refuted, _ := s.cache.lookup(memoKey{kind: memoNode, ctx: s.ctx, fp: fp})
	if refuted {
		sr.nodeHits++
		sr.trail.UndoTo(entry)
		return nil, false
	}

	try := func(sym symRef, expr dpl.Expr) ([]equation, bool) {
		m := sr.trail.Mark()
		c.SubstT(sr.trail, sym.name, expr)
		rest := make([]symRef, 0, len(syms)-1)
		for _, v := range syms {
			if v.id != sym.id {
				rest = append(rest, v)
			}
		}
		next, ok := sr.solve(append(sol, equation{sym.name, expr}), rest)
		if !ok {
			sr.trail.UndoTo(m)
		}
		return next, ok
	}

	// Rule 1 (lines 11–15): image(P, f, R) ⊆ E with closed E resolves P
	// to a preimage (L14). Generalized IMAGE is excluded (L14 invalid).
	subMasks := c.SubsetMasks()
	subFvIDs := c.SubsetFvIDs()
	for i, sub := range c.Subsets {
		imgExpr, ok := sub.L.(dpl.ImageExpr)
		if !ok || !s.closedIDs(subMasks[i][1], subFvIDs[i][1]) {
			continue
		}
		p, ok := imgExpr.Of.(dpl.Var)
		if !ok {
			continue
		}
		// image(P, f, R)'s interned fv list is exactly [id(P)].
		pid := subFvIDs[i][0][0]
		if s.externalIDs.Has(pid) {
			continue
		}
		srcRegion, ok := c.RegionOfSymID(pid)
		if !ok {
			continue
		}
		cand := dpl.PreimageExpr{Region: srcRegion, Func: imgExpr.Func, Of: sub.R}
		if next, ok := try(symRef{name: p.Name, id: pid}, cand); ok {
			return next, true
		}
	}

	// Rule 2 (lines 16–18): a symbol whose incoming subset constraints
	// all have closed left-hand sides resolves to their union (L13).
	for _, sym := range syms {
		into := c.SubsetsIntoIdxID(sym.id)
		if len(into) == 0 {
			continue
		}
		allClosed := true
		lowers := make([]dpl.Expr, 0, len(into))
		// Dedup by interned expression id: equal expressions share an id
		// and distinct ones never do, so this matches the old
		// canonical-key dedup exactly.
		seen := map[uint64]bool{}
		for _, j := range into {
			l := c.Subsets[j].L
			if !s.closedIDs(subMasks[j][0], subFvIDs[j][0]) {
				allClosed = false
				break
			}
			if id := dpl.ID(l); !seen[id] {
				seen[id] = true
				lowers = append(lowers, l)
			}
		}
		if !allClosed {
			continue
		}
		if next, ok := try(sym, dpl.UnionAll(lowers)); ok {
			return next, true
		}
	}

	// Rule 3 (lines 20–26): assign equal partitions, deepest symbols
	// first. All DISJ symbols (at every depth) come before merely-COMP
	// ones: disjointness flows right-to-left through subset constraints
	// (insight 3), so disjoint reduction targets must resolve before the
	// iteration partitions whose preimage unions depend on them.
	// (Depths are computed only here: nodes resolved by rule 1 or 2
	// never pay for them.)
	depth := sr.depths(syms)
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := maxDepth; d >= 0; d-- {
		for _, sym := range syms {
			if depth[sym.id] != d || !c.HasPredID(constraint.Disj, sym.id) {
				continue
			}
			region, ok := sr.regionOf(sym)
			if !ok {
				continue
			}
			// External compound expressions with the required properties
			// come first: reusing user partitions beats creating fresh
			// ones.
			for _, cand := range s.extCands {
				if cand.region != region || !cand.disj {
					continue
				}
				if c.HasPredID(constraint.Comp, sym.id) && !cand.comp {
					continue
				}
				if next, ok := try(sym, cand.expr); ok {
					return next, true
				}
			}
			if next, ok := try(sym, dpl.EqualExpr{Region: region}); ok {
				return next, true
			}
		}
	}
	for d := maxDepth; d >= 0; d-- {
		for _, sym := range syms {
			if depth[sym.id] != d || !c.HasPredID(constraint.Comp, sym.id) || c.HasPredID(constraint.Disj, sym.id) {
				continue
			}
			region, ok := sr.regionOf(sym)
			if !ok {
				continue
			}
			for _, cand := range s.extCands {
				if cand.region != region || !cand.comp {
					continue
				}
				if next, ok := try(sym, cand.expr); ok {
					return next, true
				}
			}
			if next, ok := try(sym, dpl.EqualExpr{Region: region}); ok {
				return next, true
			}
		}
	}

	// No rule applies: the system is resolved iff no symbols remain and
	// every conjunct is entailed (lines 27–29).
	if len(syms) > 0 {
		sr.noteRefuted(fp)
		sr.trail.UndoTo(entry)
		return nil, false
	}
	if ok, _ := constraint.CheckResolvedWith(c, s.external, s.partialFns); !ok {
		sr.noteRefuted(fp)
		sr.trail.UndoTo(entry)
		return nil, false
	}
	return sol, true
}

// noteRefuted records a completed refutation of the current node's
// conjunct set. Skipped once the search has run out of budget: from then
// on failures may be budget-caused rather than genuine, and caching them
// could wrongly refute the same system under a fresh budget.
func (sr *search) noteRefuted(fp [2]uint64) {
	if sr.exhausted {
		return
	}
	sr.s.cache.store(memoKey{kind: memoNode, ctx: sr.s.ctx, fp: fp}, true)
}

// consumeClosedConjuncts verifies every conjunct without free
// non-external symbols against the current hypotheses, removing the
// verified ones from the working system (they never change again, so
// proving each once per path suffices). It reports false when any closed
// conjunct is unprovable. Verdicts are memoized by system fingerprint:
// the proof obligations are a deterministic function of the system and
// the fixed external assumptions, and Algorithm 3's candidate checks
// revisit the same systems many times — a refuted closed-conjunct set
// fails on fingerprint lookup alone.
func (sr *search) consumeClosedConjuncts() bool {
	c, s := sr.c, sr.s
	var closedSubIdx, closedPredIdx []int
	subMasks := c.SubsetMasks()
	subFvIDs := c.SubsetFvIDs()
	for i := range c.Subsets {
		if s.closedIDs(subMasks[i][0], subFvIDs[i][0]) && s.closedIDs(subMasks[i][1], subFvIDs[i][1]) {
			closedSubIdx = append(closedSubIdx, i)
		}
	}
	predMasks := c.PredMasks()
	predFvIDs := c.PredFvIDs()
	for i, p := range c.Preds {
		if _, isVar := p.E.(dpl.Var); isVar {
			// Predicates on bare external symbols are assumptions;
			// PART-on-Var stays as region-typing info.
			continue
		}
		if p.Kind != constraint.Part && s.closedIDs(predMasks[i], predFvIDs[i]) {
			closedPredIdx = append(closedPredIdx, i)
		}
	}
	if len(closedSubIdx) == 0 && len(closedPredIdx) == 0 {
		return true
	}

	fp := c.Fingerprint128()
	key := memoKey{kind: memoClosed, ctx: s.ctx, fp: fp}
	verdict, cached := s.cache.lookup(key)
	if cached {
		sr.closedHits++
	} else {
		sr.closedMisses++
		verdict = sr.proveClosedConjuncts(closedPredIdx, closedSubIdx)
		s.cache.store(key, verdict)
	}
	if !verdict {
		return false
	}
	// All verified: consume them (trail-recorded, rewound on backtrack).
	c.RemovePredsT(sr.trail, closedPredIdx)
	c.RemoveSubsetsT(sr.trail, closedSubIdx)
	return true
}

// proveClosedConjuncts runs the actual lemma proofs behind
// consumeClosedConjuncts' memo.
func (sr *search) proveClosedConjuncts(closedPredIdx, closedSubIdx []int) bool {
	c, s := sr.c, sr.s
	// One prover over "working system plus external assumptions", built
	// without materializing the conjunction. Goal predicates must not
	// serve as their own hypotheses: drop their occurrences up front,
	// restore them before the subset proofs (which may use them).
	prover := constraint.NewProverOver(c, s.external).SetPartialFns(s.partialFns)
	for _, i := range closedPredIdx {
		prover.ExcludePredOnce(c.Preds[i])
	}
	for _, i := range closedPredIdx {
		if !prover.ProvePred(c.Preds[i]) {
			return false
		}
	}
	for _, i := range closedPredIdx {
		prover.RestorePredOnce(c.Preds[i])
	}
	for _, i := range closedSubIdx {
		if !prover.WithoutSubset(c.Subsets[i]).ProveSubset(c.Subsets[i]) {
			return false
		}
	}
	return true
}
