package solver

import (
	"strings"
	"testing"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
)

func v(name string) dpl.Expr { return dpl.Var{Name: name} }

func img(of dpl.Expr, f, r string) dpl.Expr {
	return dpl.ImageExpr{Of: of, Func: f, Region: r}
}

func infestSrc(t *testing.T, src string) ([]*infer.Result, *constraint.System, []string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	results, err := infer.New(prog).InferProgram(loops)
	if err != nil {
		t.Fatal(err)
	}
	ext, syms := infer.ExternalSystem(prog)
	return results, ext, syms
}

func solveSrc(t *testing.T, src string) *Solution {
	t.Helper()
	results, ext, syms := infestSrc(t, src)
	sol, err := SolveProgram(results, ext, syms)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSolveExample2(t *testing.T) {
	// Example 2's constraint system (from Fig. 7).
	sys := &constraint.System{}
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("P1")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P2"), Region: "S"})
	sys.AddSubset(constraint.Subset{L: img(v("P1"), "g", "S"), R: v("P2")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P3"), Region: "R"})
	sys.AddSubset(constraint.Subset{L: v("P1"), R: v("P3")})

	prog, err := New(nil, nil).Solve(sys)
	if err != nil {
		t.Fatal(err)
	}
	prog = prog.CSE()
	// Expected (after CSE): P1 = equal(R), P2 = image(P1-expansion, g, S),
	// P3 = P1.
	if e, _ := prog.Lookup("P1"); e.String() != "equal(R)" {
		t.Errorf("P1 = %v", e)
	}
	if e, _ := prog.Lookup("P2"); e.String() != "image(equal(R), g, S)" {
		t.Errorf("P2 = %v", e)
	}
	if e, _ := prog.Lookup("P3"); e.String() != "P1" {
		t.Errorf("P3 = %v", e)
	}
}

func TestSolveExample3(t *testing.T) {
	// Example 3: extra DISJ(P2) flips the strategy to equal(S) +
	// preimage.
	sys := &constraint.System{}
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("P1")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P2"), Region: "S"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("P2")})
	sys.AddSubset(constraint.Subset{L: img(v("P1"), "g", "S"), R: v("P2")})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P3"), Region: "R"})
	sys.AddSubset(constraint.Subset{L: v("P1"), R: v("P3")})

	prog, err := New(nil, nil).Solve(sys)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := prog.Lookup("P2"); e.String() != "equal(S)" {
		t.Errorf("P2 = %v", e)
	}
	if e, _ := prog.Lookup("P1"); e.String() != "preimage(R, g, equal(S))" {
		t.Errorf("P1 = %v", e)
	}
}

const figure1Src = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func TestSolveFigure1ProducesProgramB(t *testing.T) {
	// End-to-end: Fig. 1a infers Fig. 1c's constraints, unification
	// merges the two loops' cell partitions, and the solver emits the
	// fewest-partitions strategy of Fig. 2b (program B).
	sol := solveSrc(t, figure1Src)
	text := sol.Program.String()

	// One equal partition of Cells, the particle partition derived by
	// preimage, and the h-halo by image — and nothing more.
	if !strings.Contains(text, "equal(Cells)") {
		t.Errorf("expected an equal partition of Cells:\n%s", text)
	}
	if !strings.Contains(text, "preimage(Particles, Particles[·].cell,") {
		t.Errorf("expected the particle partition to be a preimage:\n%s", text)
	}
	if !strings.Contains(text, "image(") || !strings.Contains(text, ", h, Cells)") {
		t.Errorf("expected an h-image partition:\n%s", text)
	}
	if strings.Contains(text, "equal(Particles)") {
		t.Errorf("program A strategy (equal(Particles)) chosen over program B:\n%s", text)
	}
	if got := sol.Program.NumPartitionOps(); got > 5 {
		t.Errorf("too many partition operations (%d):\n%s", got, text)
	}

	// The two loops' iteration partitions must be distinct symbols but
	// the h-image partitions must have been unified.
	iter1 := sol.Resolve("P1")
	iter2 := sol.Resolve("P6")
	if iter1 == iter2 {
		t.Error("Particles and Cells iteration partitions cannot be unified")
	}
}

func TestSolveFigure1Unification(t *testing.T) {
	// The second loop's Cells read partition (image under h) must be
	// unified with the first loop's — Example 5.
	results, ext, syms := infestSrc(t, figure1Src)
	s := New(ext, syms)
	systems := []*constraint.System{results[0].Sys, results[1].Sys}
	combined, canon, err := s.UnifyAndSolve(systems)
	if err != nil {
		t.Fatal(err)
	}
	if len(canon) == 0 {
		t.Fatalf("no unifications found; combined:\n%s", combined)
	}
	// Total partitions of Cells should shrink below the 4 separate
	// symbols the two loops introduce.
	partOf := combined.PartOf()
	cells := 0
	for _, r := range partOf {
		if r == "Cells" {
			cells++
		}
	}
	if cells > 3 {
		t.Errorf("unification left %d Cells partitions:\n%s", cells, combined)
	}
}

func TestSolveSpMVFigure10(t *testing.T) {
	sol := solveSrc(t, `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }
for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`)
	text := sol.Program.String()
	// Fig. 10b: P1 = equal(Y); P2 = image(P1, id, Ranges);
	// P3 = IMAGE(P2, Ranges[·].span, Mat); P4 = image(P3, Mat[·].ind, X).
	for _, frag := range []string{
		"equal(Y)",
		"image(P1, id, Ranges)",
		"IMAGE(P2, Ranges[·].span, Mat)",
		"image(P3, Mat[·].ind, X)",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("program missing %q:\n%s", frag, text)
		}
	}
}

func TestSolveExternalConstraintsExample6(t *testing.T) {
	// Example 6: the user provides pParticles/pCells with the Fig. 4
	// invariant; the solver reuses them and derives only the halo
	// partition.
	sol := solveSrc(t, `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
extern partition pParticles of Particles
extern partition pCells of Cells
assert image(pParticles, Particles.cell, Cells) <= pCells
assert disjoint(pParticles)
assert complete(pParticles, Particles)
assert disjoint(pCells)
assert complete(pCells, Cells)
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`)
	// P1 (particles iteration) must resolve to pParticles, the cells
	// partitions to pCells.
	if got := sol.Resolve("P1"); got != "pParticles" {
		t.Errorf("P1 resolved to %q, want pParticles", got)
	}
	text := sol.Program.String()
	if !strings.Contains(text, "image(pCells, h, Cells)") {
		t.Errorf("expected halo derived from pCells:\n%s", text)
	}
	if strings.Contains(text, "equal(") {
		t.Errorf("no fresh equal partitions should be needed:\n%s", text)
	}
}

func TestSolveUnsolvableReportsError(t *testing.T) {
	// DISJ on a symbol that must contain an image of an external (so
	// neither equal-assignment nor preimage applies... actually preimage
	// applies; construct a genuinely stuck system: DISJ on an
	// IMAGE-lower-bounded symbol, where L14 is unavailable).
	sys := &constraint.System{}
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("P1"), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v("P2"), Region: "S"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("P2")})
	sys.AddSubset(constraint.Subset{L: dpl.ImageMultiExpr{Of: v("P1"), Func: "F", Region: "S"}, R: v("P2")})

	_, err := New(nil, nil).Solve(sys)
	if err == nil {
		t.Fatal("expected no solution")
	}
	if !strings.Contains(err.Error(), "no solution") {
		t.Errorf("err = %v", err)
	}
}

func TestSolveTrivialSystem(t *testing.T) {
	prog, err := New(nil, nil).Solve(&constraint.System{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 0 {
		t.Errorf("empty system should give empty program: %s", prog)
	}
}

func TestSolutionResolveChains(t *testing.T) {
	sol := &Solution{Canon: map[string]string{"A": "B", "B": "C"}}
	if sol.Resolve("A") != "C" || sol.Resolve("B") != "C" || sol.Resolve("C") != "C" || sol.Resolve("X") != "X" {
		t.Error("Resolve chain wrong")
	}
}

func TestReuseSubexpressions(t *testing.T) {
	var prog dpl.Program
	inner := dpl.ImageExpr{Of: dpl.EqualExpr{Region: "R"}, Func: "f", Region: "S"}
	prog.Append("P1", dpl.EqualExpr{Region: "R"})
	prog.Append("P2", inner)
	prog.Append("P3", dpl.ImageExpr{Of: inner, Func: "g", Region: "T"})
	out := reuseSubexpressions(prog)
	if e, _ := out.Lookup("P3"); e.String() != "image(P2, g, T)" {
		t.Errorf("P3 = %s", e)
	}
	// P2's own definition references P1 after reuse.
	if e, _ := out.Lookup("P2"); e.String() != "image(P1, f, S)" {
		t.Errorf("P2 = %s", e)
	}
}

func TestOrderProgram(t *testing.T) {
	var prog dpl.Program
	prog.Append("B", dpl.ImageExpr{Of: dpl.Var{Name: "A"}, Func: "f", Region: "R"})
	prog.Append("A", dpl.EqualExpr{Region: "R"})
	out := orderProgram(prog, nil)
	if out.Stmts[0].Name != "A" || out.Stmts[1].Name != "B" {
		t.Errorf("order = %v", out.Stmts)
	}
	if err := out.TopoCheck(nil); err != nil {
		t.Error(err)
	}
}

func TestSolveMiniAeroLikeManyLoops(t *testing.T) {
	// Many structurally identical loops (as in MiniAero's 26) must
	// unify down to a handful of partitions.
	src := `
region Faces { c1: index(Cells), c2: index(Cells), flux: scalar }
region Cells { v: scalar, res: scalar }
for f1 in Faces {
  Faces[f1].flux = a(Cells[Faces[f1].c1].v, Cells[Faces[f1].c2].v)
}
for f2 in Faces {
  Cells[Faces[f2].c1].res += Faces[f2].flux
  Cells[Faces[f2].c2].res += Faces[f2].flux
}
for f3 in Faces {
  Faces[f3].flux = b(Cells[Faces[f3].c1].v, Cells[Faces[f3].c2].v)
}
`
	sol := solveSrc(t, src)
	// Count distinct partition-constructing statements (non-alias).
	ops := 0
	for _, st := range sol.Program.Stmts {
		if _, isVar := st.Expr.(dpl.Var); !isVar {
			ops++
		}
	}
	if ops > 6 {
		t.Errorf("expected heavy partition reuse across loops, got %d ops:\n%s", ops, sol.Program)
	}
}

func TestSolveExternalUnionCandidate(t *testing.T) {
	// The Circuit hint (§6.4): DISJ(pn_private ∪ pn_shared) ∧
	// COMP(pn_private ∪ pn_shared, rn). A centered loop over rn should
	// have its iteration partition resolved to the asserted union rather
	// than a fresh equal partition.
	sol := solveSrc(t, `
region rn { voltage: scalar, charge: scalar }
extern partition pn_private of rn
extern partition pn_shared of rn
assert disjoint(pn_private + pn_shared)
assert complete(pn_private + pn_shared, rn)
for n in rn {
  rn[n].voltage += rn[n].charge
}
`)
	text := sol.Program.String()
	if !strings.Contains(text, "(pn_private ∪ pn_shared)") {
		t.Errorf("expected the external union to be reused:\n%s", text)
	}
	if strings.Contains(text, "equal(") {
		t.Errorf("no fresh equal partition should be created:\n%s", text)
	}
}

func TestSolveExternalCandidateRequiresProperties(t *testing.T) {
	// Without the COMP assertion the union cannot serve as an iteration
	// partition; the solver must fall back to equal(rn).
	sol := solveSrc(t, `
region rn { voltage: scalar, charge: scalar }
extern partition pn_private of rn
extern partition pn_shared of rn
assert disjoint(pn_private + pn_shared)
for n in rn {
  rn[n].voltage += rn[n].charge
}
`)
	if !strings.Contains(sol.Program.String(), "equal(rn)") {
		t.Errorf("expected fallback to equal(rn):\n%s", sol.Program)
	}
}
