package solver

import (
	"os"
	"sort"
	"time"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/lang"
	"autopart/internal/par"
)

// solvableBudget caps each Algorithm 3 candidate check: checks only need
// a yes/no, so they get a much smaller node allowance than a full Solve.
const solvableBudget = 20000

// solvable runs a full solve on a candidate system (Algorithm 3 line 13).
// Verdicts are memoized by canonical system fingerprint: the per-round
// candidates differ only in a few renamed conjuncts, and later rounds
// (and later systems) re-produce merged systems checked before. The
// verdict is a deterministic function of the conjunct set and the
// solver's fixed external assumptions, so the cache is sound. Each miss
// runs an isolated search (own budget, own working clone), making
// concurrent calls safe.
func (s *Solver) solvable(sys *constraint.System) bool {
	key := memoKey{kind: memoSolvable, ctx: s.ctx, fp: sys.Fingerprint128()}
	if v, hit := s.cache.lookup(key); hit {
		s.mu.Lock()
		s.stats.MemoHits++
		s.mu.Unlock()
		return v
	}
	s.mu.Lock()
	s.stats.MemoMisses++
	s.mu.Unlock()
	sr := s.newSearch(sys, solvableBudget)
	_, ok := sr.solve(nil, s.unresolved(sr.c))
	sr.finish()
	s.cache.store(key, ok)
	return ok
}

// sysSize measures a system for Algorithm 3's descending-size sort.
func sysSize(sys *constraint.System) int {
	return len(sys.Preds) + len(sys.Subsets)
}

// UnifyAndSolve implements Algorithm 3: greedily unify isomorphic
// constraint subgraphs across the per-loop systems (and against external
// partitions), checking solvability after each unification, then solve
// the combined system.
func (s *Solver) UnifyAndSolve(systems []*constraint.System) (*constraint.System, map[string]string, error) {
	defer func(t0 time.Time) {
		s.mu.Lock()
		s.stats.UnifyNS += time.Since(t0).Nanoseconds()
		s.mu.Unlock()
	}(time.Now())
	canon := map[string]string{}

	ordered := append([]*constraint.System(nil), systems...)
	sort.SliceStable(ordered, func(i, j int) bool { return sysSize(ordered[i]) > sysSize(ordered[j]) })

	combined := &constraint.System{}

	// §3.2 needs membership sets over the accumulated conjuncts: the
	// baseline "already present" set (external ∪ combined) and combined's
	// own set. Both grow monotonically — combined only ever appends — so
	// they are maintained incrementally across the whole run instead of
	// being rebuilt per system (which made unification quadratic in the
	// accumulated size across many-loop programs). extCombined mirrors
	// mergeSystems(external, combined): the deduplicated external
	// conjuncts followed by combined's novel ones, in append order.
	basePred := make(map[constraint.Pred]bool, len(s.external.Preds))
	baseSub := make(map[constraint.Subset]bool, len(s.external.Subsets))
	combinedPred := map[constraint.Pred]bool{}
	combinedSub := map[constraint.Subset]bool{}
	extCombined := &constraint.System{}
	for _, q := range s.external.Preds {
		if !basePred[q] {
			basePred[q] = true
			extCombined.Preds = append(extCombined.Preds, q)
		}
	}
	for _, q := range s.external.Subsets {
		if !dpl.Equal(q.L, q.R) && !baseSub[q] {
			baseSub[q] = true
			extCombined.Subsets = append(extCombined.Subsets, q)
		}
	}

	// The accumulated system starts from the external assumptions'
	// *graph-relevant* content so inferred symbols can unify directly
	// with user partitions (Example 6); the assumptions themselves stay
	// in s.external and are not obligations. extCombined carries exactly
	// that content (deduplicated, tautology-free — neither affects the
	// graph), so it doubles as the initial accumulated system.
	accGraphSys := extCombined

	// The accumulated graph is maintained incrementally. Every system
	// flowing through accGraphSys is extCombined, or extCombined's
	// conjuncts plus an appended remainder (mergeWithBase), and
	// extCombined itself only ever grows by appending (growCombined) —
	// so extGraph, the graph of extCombined's conjuncts, is extended
	// with each delta instead of rebuilt, and per-round merged graphs
	// extend it further. The prefix invariant is by construction; under
	// AUTOPART_DEBUG_GRAPHCACHE=1 every served graph is checked against
	// a fresh BuildGraph so an in-place System mutation (or a broken
	// invariant) can never silently serve a stale graph. Systems are
	// never mutated after construction (growCombined and mergeWithBase
	// hand out fresh headers whenever content grows), so pointer
	// identity remains a sound round-to-round cache key.
	debugGraphCache := os.Getenv("AUTOPART_DEBUG_GRAPHCACHE") == "1"
	var cachedAccGraph, extGraph *constraint.Graph
	var cachedAccFor *constraint.System
	noteGraph := func(extended bool) {
		s.mu.Lock()
		if extended {
			s.stats.GraphExtends++
		} else {
			s.stats.GraphBuilds++
		}
		s.mu.Unlock()
	}
	accGraphOf := func(sys *constraint.System) *constraint.Graph {
		if cachedAccFor != sys {
			// Sync the base graph to extCombined's current content
			// first; both only ever append, so the delta is cheap.
			switch {
			case extGraph == nil:
				extGraph = constraint.BuildGraph(extCombined)
				noteGraph(false)
			case !extGraph.Covers(extCombined):
				extGraph = extGraph.Extended(extCombined)
				noteGraph(true)
			}
			if sys == extCombined {
				cachedAccGraph = extGraph
			} else {
				cachedAccGraph = extGraph.Extended(sys)
				noteGraph(true)
			}
			cachedAccFor = sys
			if debugGraphCache {
				fresh := constraint.BuildGraph(sys)
				if fresh.Fingerprint() != cachedAccGraph.Fingerprint() {
					panic("solver: accumulated-graph cache served a stale graph (AUTOPART_DEBUG_GRAPHCACHE)")
				}
			}
		}
		return cachedAccGraph
	}

	// growCombined appends sys's novel, non-tautological conjuncts to
	// combined and extCombined (replicating mergeSystems order), updating
	// the membership sets. Grown systems get fresh System headers so
	// lazily built caches (index, masks, fingerprint) never go stale;
	// untouched ones keep their pointer, which the accumulated-graph
	// cache below relies on.
	growCombined := func(sys *constraint.System) {
		nc, ne := len(combined.Preds)+len(combined.Subsets), len(extCombined.Preds)+len(extCombined.Subsets)
		for _, q := range sys.Preds {
			if !combinedPred[q] {
				combinedPred[q] = true
				combined.Preds = append(combined.Preds, q)
				if !basePred[q] {
					basePred[q] = true
					extCombined.Preds = append(extCombined.Preds, q)
				}
			}
		}
		for _, q := range sys.Subsets {
			if dpl.Equal(q.L, q.R) {
				continue
			}
			if !combinedSub[q] {
				combinedSub[q] = true
				combined.Subsets = append(combined.Subsets, q)
				if !baseSub[q] {
					baseSub[q] = true
					extCombined.Subsets = append(extCombined.Subsets, q)
				}
			}
		}
		if len(combined.Preds)+len(combined.Subsets) != nc {
			combined = &constraint.System{Preds: combined.Preds, Subsets: combined.Subsets}
		}
		if len(extCombined.Preds)+len(extCombined.Subsets) != ne {
			extCombined = &constraint.System{Preds: extCombined.Preds, Subsets: extCombined.Subsets}
		}
	}

	// deltaCounts reports how many conjuncts of sys are not in the
	// baseline (deduplicated exactly as subtractSystem would). §3.2: only
	// unifications that reduce the number of subset constraints are
	// worthwhile; the external assumptions count as already present.
	deltaCounts := func(sys *constraint.System) (subs, total int) {
		predSeen := map[constraint.Pred]bool{}
		for _, p := range sys.Preds {
			if !basePred[p] && !predSeen[p] {
				predSeen[p] = true
				total++
			}
		}
		subSeen := map[constraint.Subset]bool{}
		for _, c := range sys.Subsets {
			if dpl.Equal(c.L, c.R) {
				continue
			}
			if !baseSub[c] && !subSeen[c] {
				subSeen[c] = true
				subs++
				total++
			}
		}
		return subs, total
	}
	// Candidate checks merge the fixed accumulated system with one small
	// candidate each; the live membership sets mean every merge only pays
	// for the candidate's side. combined is deduplicated and
	// tautology-free by construction, so it copies over as a prefix
	// verbatim.
	mergeWithCombined := func(cand *constraint.System) *constraint.System {
		out := &constraint.System{
			Preds:   append(make([]constraint.Pred, 0, len(combined.Preds)+len(cand.Preds)), combined.Preds...),
			Subsets: append(make([]constraint.Subset, 0, len(combined.Subsets)+len(cand.Subsets)), combined.Subsets...),
		}
		predSeen := map[constraint.Pred]bool{}
		for _, p := range cand.Preds {
			if !combinedPred[p] && !predSeen[p] {
				predSeen[p] = true
				out.Preds = append(out.Preds, p)
			}
		}
		subSeen := map[constraint.Subset]bool{}
		for _, c := range cand.Subsets {
			if dpl.Equal(c.L, c.R) {
				continue
			}
			if !combinedSub[c] && !subSeen[c] {
				subSeen[c] = true
				out.Subsets = append(out.Subsets, c)
			}
		}
		return out
	}

	// Each unification round is a deterministic function of the solving
	// context, the accumulated state, and the incoming system, so its
	// greedy winner is memoized in the shared cache: a warm service
	// replays the committed renames of an identical round without
	// building graphs, matching subgraphs, or running candidate checks.
	// The key folds *order-sensitive* system fingerprints — the winner
	// depends on graph construction order, which follows conjunct order,
	// so the order-free Fingerprint128 would conflate distinct rounds.
	// Fingerprints are cached per System pointer for this call; systems
	// are never mutated after construction (grown ones get fresh
	// headers), so pointer identity is a sound cache key here too.
	orderedFPs := map[*constraint.System][2]uint64{}
	orderedFPOf := func(sys *constraint.System) [2]uint64 {
		fp, ok := orderedFPs[sys]
		if !ok {
			fp = sys.OrderedFingerprint128()
			orderedFPs[sys] = fp
		}
		return fp
	}
	extOrderedFP := s.external.OrderedFingerprint128()
	roundKey := func(acc, remaining *constraint.System) memoKey {
		const p1, p2 = 0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f
		fp := extOrderedFP
		for _, h := range [][2]uint64{orderedFPOf(acc), orderedFPOf(combined), orderedFPOf(remaining)} {
			fp[0] = (fp[0] ^ h[0]) * p1
			fp[1] = (fp[1] ^ h[1]) * p2
		}
		return memoKey{kind: memoUnify, ctx: s.ctx, fp: fp}
	}
	noteUnifyMemo := func(hit bool) {
		s.mu.Lock()
		if hit {
			s.stats.UnifyRoundHits++
		} else {
			s.stats.UnifyRoundMisses++
		}
		s.mu.Unlock()
	}

	for _, cur := range ordered {
		remaining := cur.Clone()
		// Bound the unification rounds per system: each round runs full
		// solvability checks, and in practice the first round or two find
		// everything worth merging.
		for round := 0; round < 4; round++ {
			// Nothing left to unify: an empty remaining system yields an
			// empty graph, no candidate mappings, and no winner — skip
			// rebuilding the (large) accumulated graph just to find that.
			if sysSize(remaining) == 0 {
				break
			}
			rk := roundKey(accGraphSys, remaining)
			if w, hit := s.cache.lookupUnify(rk); hit {
				noteUnifyMemo(true)
				if w.renames == nil {
					break
				}
				renames := make(map[string]string, len(w.renames))
				for _, rp := range w.renames {
					renames[rp.from] = rp.to
					canon[rp.from] = rp.to
				}
				remaining = subtractSets(applyRenames(remaining, renames), combinedPred, combinedSub)
				accGraphSys = mergeWithBase(extCombined, remaining, basePred, baseSub)
				continue
			}
			noteUnifyMemo(false)
			accGraph := accGraphOf(accGraphSys)
			curGraph := constraint.BuildGraph(remaining)

			// Greedily consider only the first few largest candidates (as
			// the paper notes, the largest subgraphs usually contain the
			// smaller ones, and each check runs a full solve). Candidate
			// filtering runs sequentially in mapping order; the expensive
			// solvability checks then run in parallel, and the winner is
			// the first candidate in mapping order that passes — exactly
			// the candidate the sequential greedy loop would commit.
			const maxTries = 6
			deltaBeforeSubs, _ := deltaCounts(remaining)
			type unifyCand struct {
				renames   map[string]string
				candidate *constraint.System
				auto      bool // all renamed conjuncts already present
			}
			// filterCand applies the rename filter and the §3.2 delta
			// tests to one mapping; nil means the mapping is skipped
			// without consuming a try.
			filterCand := func(m constraint.Mapping) *unifyCand {
				// Keep only fresh→existing renamings.
				renames := map[string]string{}
				for from, to := range m {
					if from == to || s.externalSyms[from] {
						continue
					}
					renames[from] = to
				}
				if len(renames) == 0 {
					return nil
				}
				candidate := applyRenames(remaining, renames)
				deltaSubs, deltaTotal := deltaCounts(candidate)
				if deltaSubs >= deltaBeforeSubs {
					return nil
				}
				// deltaTotal == 0: the renamed conjuncts are all already
				// present, the merge changes nothing, and no solvability
				// check is needed — the common case for programs whose
				// loops share structure (MiniAero's RK stages, PENNANT's
				// phases). The greedy loop always commits there, so no
				// later mapping can be reached.
				return &unifyCand{renames: renames, candidate: candidate, auto: deltaTotal == 0}
			}
			var winner *unifyCand
			if par.Sequential() || par.Workers() == 1 {
				// One worker: the original interleaved greedy loop, whose
				// early exit on the first passing check skips building
				// (and materializing) every later candidate.
				tries := 0
				constraint.EachCommonSubgraph(accGraph, curGraph, func(m constraint.Mapping) bool {
					if tries >= maxTries {
						return false
					}
					cand := filterCand(m)
					if cand == nil {
						return true
					}
					if cand.auto {
						winner = cand
						return false
					}
					tries++
					if s.solvable(mergeWithCombined(cand.candidate)) {
						winner = cand
						return false
					}
					return true
				})
			} else {
				// Multiple workers: build the candidate list up front
				// (cheap filters, sequential, in mapping order), check
				// solvability concurrently, and pick the first passing
				// candidate in mapping order — exactly the candidate the
				// interleaved loop above would commit.
				var checks []*unifyCand
				var auto *unifyCand
				constraint.EachCommonSubgraph(accGraph, curGraph, func(m constraint.Mapping) bool {
					if len(checks) >= maxTries {
						return false
					}
					cand := filterCand(m)
					if cand == nil {
						return true
					}
					if cand.auto {
						auto = cand
						return false
					}
					checks = append(checks, cand)
					return true
				})
				oks := make([]bool, len(checks))
				par.Do(len(checks), func(i int) {
					oks[i] = s.solvable(mergeWithCombined(checks[i].candidate))
				})
				for i := range checks {
					if oks[i] {
						winner = checks[i]
						break
					}
				}
				if winner == nil {
					winner = auto
				}
			}
			if winner == nil {
				// A nil rename set memoizes "no winner": the identical
				// round in a later compile stops unifying immediately.
				s.cache.storeUnify(rk, unifyWinner{})
				break
			}
			// Commit this unification, memoizing the committed renames for
			// identical future rounds (sorted for deterministic replay).
			pairs := make([]renamePair, 0, len(winner.renames))
			for from, to := range winner.renames {
				pairs = append(pairs, renamePair{from: from, to: to})
			}
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].from < pairs[j].from })
			s.cache.storeUnify(rk, unifyWinner{renames: pairs})
			remaining = winner.candidate
			for from, to := range winner.renames {
				canon[from] = to
			}
			// Filter conjuncts already accumulated and keep looking for
			// further common subgraphs (line 16 of Algorithm 3). The live
			// membership sets stand in for a subtractSystem/mergeSystems
			// pass over the accumulated conjuncts.
			remaining = subtractSets(remaining, combinedPred, combinedSub)
			accGraphSys = mergeWithBase(extCombined, remaining, basePred, baseSub)
		}
		growCombined(remaining)
		accGraphSys = extCombined
	}

	// Resolve canonical chains (a symbol may have been renamed to a
	// symbol that was itself renamed later... chains are short). The hop
	// bound guards against a cyclic map, which would otherwise hang.
	for from := range canon {
		to := canon[from]
		for hops := 0; hops <= len(canon); hops++ {
			next, ok := canon[to]
			if !ok || next == to {
				break
			}
			to = next
		}
		canon[from] = to
	}
	return combined, canon, nil
}

// applyRenames substitutes symbols by symbols — simultaneously in the
// common case (one pass over the system). When a renamed-to symbol is
// itself renamed, simultaneous and chained application differ, so that
// (never observed) case falls back to one Subst per entry, in sorted
// order for determinism.
func applyRenames(sys *constraint.System, renames map[string]string) *constraint.System {
	for _, to := range renames {
		if _, chained := renames[to]; chained {
			froms := make([]string, 0, len(renames))
			for from := range renames {
				froms = append(froms, from)
			}
			sort.Strings(froms)
			out := sys.Clone()
			for _, from := range froms {
				out.Subst(from, dpl.Var{Name: renames[from]})
			}
			return out
		}
	}
	return sys.RenamedSyms(renames)
}

// mergeSystems conjoins systems with deduplication. Pred and Subset are
// comparable value structs whose expressions are structurally unique
// under ==, so they serve as map keys directly — the merge is linear,
// with no string building (constructing conjunct Keys here would cost
// more than it saves).
func mergeSystems(systems ...*constraint.System) *constraint.System {
	out := &constraint.System{}
	predSeen := map[constraint.Pred]bool{}
	subSeen := map[constraint.Subset]bool{}
	for _, sys := range systems {
		if sys == nil {
			continue
		}
		for _, p := range sys.Preds {
			if !predSeen[p] {
				predSeen[p] = true
				out.Preds = append(out.Preds, p)
			}
		}
		for _, c := range sys.Subsets {
			if dpl.Equal(c.L, c.R) {
				continue
			}
			if !subSeen[c] {
				subSeen[c] = true
				out.Subsets = append(out.Subsets, c)
			}
		}
	}
	return out
}

// subtractSets is subtractSystem against precomputed membership sets
// (the solver maintains combined's sets incrementally, so the per-commit
// pass over the accumulated system disappears).
func subtractSets(a *constraint.System, predB map[constraint.Pred]bool, subB map[constraint.Subset]bool) *constraint.System {
	out := &constraint.System{}
	predSeen := map[constraint.Pred]bool{}
	for _, p := range a.Preds {
		if !predB[p] && !predSeen[p] {
			predSeen[p] = true
			out.Preds = append(out.Preds, p)
		}
	}
	subSeen := map[constraint.Subset]bool{}
	for _, c := range a.Subsets {
		if dpl.Equal(c.L, c.R) {
			continue
		}
		if !subB[c] && !subSeen[c] {
			subSeen[c] = true
			out.Subsets = append(out.Subsets, c)
		}
	}
	return out
}

// mergeWithBase conjoins prefix (already deduplicated) with add's
// conjuncts not in the base membership sets — mergeSystems specialized
// to the "accumulated system plus fresh remainder" shape so only the
// small side pays dedup hashing.
func mergeWithBase(prefix, add *constraint.System, basePred map[constraint.Pred]bool, baseSub map[constraint.Subset]bool) *constraint.System {
	out := &constraint.System{
		Preds:   append(make([]constraint.Pred, 0, len(prefix.Preds)+len(add.Preds)), prefix.Preds...),
		Subsets: append(make([]constraint.Subset, 0, len(prefix.Subsets)+len(add.Subsets)), prefix.Subsets...),
	}
	predSeen := map[constraint.Pred]bool{}
	for _, p := range add.Preds {
		if !basePred[p] && !predSeen[p] {
			predSeen[p] = true
			out.Preds = append(out.Preds, p)
		}
	}
	subSeen := map[constraint.Subset]bool{}
	for _, c := range add.Subsets {
		if dpl.Equal(c.L, c.R) {
			continue
		}
		if !baseSub[c] && !subSeen[c] {
			subSeen[c] = true
			out.Subsets = append(out.Subsets, c)
		}
	}
	if len(out.Preds) == len(prefix.Preds) && len(out.Subsets) == len(prefix.Subsets) {
		// Nothing novel: hand back the prefix itself so pointer-keyed
		// caches (the accumulated-graph cache) keep working.
		return prefix
	}
	return out
}

// subtractSystem removes conjuncts of b from a (and deduplicates the
// result, as the Add* methods it replaced did). Set membership over the
// comparable conjunct structs makes it linear in the two systems.
func subtractSystem(a, b *constraint.System) *constraint.System {
	out := &constraint.System{}
	predB := make(map[constraint.Pred]bool, len(b.Preds))
	for _, q := range b.Preds {
		predB[q] = true
	}
	subB := make(map[constraint.Subset]bool, len(b.Subsets))
	for _, q := range b.Subsets {
		subB[q] = true
	}
	predSeen := map[constraint.Pred]bool{}
	for _, p := range a.Preds {
		if !predB[p] && !predSeen[p] {
			predSeen[p] = true
			out.Preds = append(out.Preds, p)
		}
	}
	subSeen := map[constraint.Subset]bool{}
	for _, c := range a.Subsets {
		if dpl.Equal(c.L, c.R) {
			continue
		}
		if !subB[c] && !subSeen[c] {
			subSeen[c] = true
			out.Subsets = append(out.Subsets, c)
		}
	}
	return out
}

// SolveProgram is the full §3 pipeline over the inference results of all
// loops: unify, solve, and post-process the DPL program (nested-
// subexpression reuse plus CSE). It uses a private per-compile memo
// cache; a compile service shares verdicts across compiles through
// SolveProgramWith.
func SolveProgram(results []*infer.Result, external *constraint.System, externalSyms []string) (*Solution, error) {
	return SolveProgramWith(results, external, externalSyms, nil)
}

// SolveProgramWith is SolveProgram with an injected cross-compile memo
// cache (nil selects a private one). Verdict reuse never changes output:
// cached solvability/closed/refuted verdicts are exactly what the
// searches would recompute, so a warm cache accelerates the same
// byte-identical solution.
func SolveProgramWith(results []*infer.Result, external *constraint.System, externalSyms []string, cache *MemoCache) (*Solution, error) {
	return SolveProgramPartial(results, external, externalSyms, cache, nil)
}

// SolveProgramPartial is SolveProgramWith plus the program's declared-
// partial index function set: provers refuse totality-dependent lemmas
// (L7) on those functions, and the memo context is keyed on the set so
// a shared cache never serves total-world verdicts to a partial-world
// program.
func SolveProgramPartial(results []*infer.Result, external *constraint.System, externalSyms []string, cache *MemoCache, partialFns map[string]bool) (*Solution, error) {
	s := NewWithCache(external, externalSyms, cache)
	if len(partialFns) > 0 {
		s.SetPartialFns(partialFns)
	}
	systems := make([]*constraint.System, len(results))
	for i, r := range results {
		systems[i] = r.Sys
	}
	combined, canon, err := s.UnifyAndSolve(systems)
	if err != nil {
		return nil, err
	}
	prog, err := s.Solve(combined)
	if err != nil {
		return nil, err
	}

	// Fill identity entries so Resolve works for every original symbol.
	for _, r := range results {
		for _, a := range r.Accesses {
			if _, ok := canon[a.Sym]; !ok {
				canon[a.Sym] = a.Sym
			}
		}
		if _, ok := canon[r.IterSym]; !ok {
			canon[r.IterSym] = r.IterSym
		}
	}

	prog = reuseSubexpressions(prog)
	prog = prog.CSE()
	ext := map[string]bool{}
	for _, sym := range externalSyms {
		ext[sym] = true
	}
	prog = orderProgram(prog, ext)
	if err := prog.TopoCheck(ext); err != nil {
		return nil, lang.Errorf("S002", lang.Span{}, "solver: internal error: %v", err)
	}

	finalSys := combined.Clone()
	for _, st := range prog.Stmts {
		finalSys.Subst(st.Name, st.Expr)
	}
	return &Solution{
		Program:      prog,
		Canon:        canon,
		System:       finalSys,
		ExternalSyms: externalSyms,
		Stats:        s.Stats(),
	}, nil
}

// reuseSubexpressions rewrites each statement's RHS so that nested
// subexpressions structurally equal to an earlier statement's RHS become
// references to that statement's symbol. This recovers the dependent
// structure of Fig. 10b (P4 = image(P3, ...) instead of a fully expanded
// nest) because solved equations are otherwise fully substituted.
func reuseSubexpressions(prog dpl.Program) dpl.Program {
	type def struct {
		name string
		expr dpl.Expr
		size int
	}
	var defs []def
	var out dpl.Program
	for _, st := range prog.Stmts {
		e := st.Expr
		// Replace biggest earlier definitions first so maximal sharing
		// wins.
		sort.SliceStable(defs, func(i, j int) bool { return defs[i].size > defs[j].size })
		for _, d := range defs {
			e = replaceSubexpr(e, d.expr, dpl.Var{Name: d.name})
		}
		out.Append(st.Name, e)
		defs = append(defs, def{name: st.Name, expr: st.Expr, size: dpl.Size(st.Expr)})
	}
	return out
}

// replaceSubexpr substitutes every occurrence of target (a non-Var
// expression) in e with repl; it does not replace e itself when e equals
// target at the top level (that would turn a definition into a self-
// alias) — callers replace only strictly nested occurrences.
func replaceSubexpr(e, target, repl dpl.Expr) dpl.Expr {
	rec := func(sub dpl.Expr) dpl.Expr {
		if dpl.Equal(sub, target) {
			return repl
		}
		return replaceSubexpr(sub, target, repl)
	}
	switch x := e.(type) {
	case dpl.ImageExpr:
		return dpl.ImageExpr{Of: rec(x.Of), Func: x.Func, Region: x.Region}
	case dpl.PreimageExpr:
		return dpl.PreimageExpr{Region: x.Region, Func: x.Func, Of: rec(x.Of)}
	case dpl.ImageMultiExpr:
		return dpl.ImageMultiExpr{Of: rec(x.Of), Func: x.Func, Region: x.Region}
	case dpl.PreimageMultiExpr:
		return dpl.PreimageMultiExpr{Region: x.Region, Func: x.Func, Of: rec(x.Of)}
	case dpl.BinExpr:
		return dpl.BinExpr{Op: x.Op, L: rec(x.L), R: rec(x.R)}
	default:
		return e
	}
}

// orderProgram topologically orders statements so uses follow
// definitions (reuseSubexpressions can introduce forward references when
// a later, larger definition is folded into an earlier one — ordering by
// dependencies restores a valid program).
func orderProgram(prog dpl.Program, external map[string]bool) dpl.Program {
	defined := map[string]bool{}
	for name := range external {
		defined[name] = true
	}
	pending := append([]dpl.Stmt(nil), prog.Stmts...)
	var out dpl.Program
	for len(pending) > 0 {
		progress := false
		rest := pending[:0]
		for _, st := range pending {
			ready := true
			for _, v := range dpl.FreeVars(st.Expr) {
				if !defined[v] {
					ready = false
					break
				}
			}
			if ready {
				out.Stmts = append(out.Stmts, st)
				defined[st.Name] = true
				progress = true
			} else {
				rest = append(rest, st)
			}
		}
		pending = append([]dpl.Stmt(nil), rest...)
		if !progress {
			// A dependency cycle should be impossible; emit the rest
			// as-is and let TopoCheck report it.
			out.Stmts = append(out.Stmts, pending...)
			break
		}
	}
	return out
}
