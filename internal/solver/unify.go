package solver

import (
	"sort"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/lang"
)

// solvable runs a full solve on a candidate system (Algorithm 3 line 13).
func (s *Solver) solvable(sys *constraint.System) bool {
	saved := s.budget
	s.budget = 20000
	work := sys.Clone()
	_, ok := s.solve(work, nil, s.unresolved(work))
	s.budget = saved
	return ok
}

// sysSize measures a system for Algorithm 3's descending-size sort.
func sysSize(sys *constraint.System) int {
	return len(sys.Preds) + len(sys.Subsets)
}

// UnifyAndSolve implements Algorithm 3: greedily unify isomorphic
// constraint subgraphs across the per-loop systems (and against external
// partitions), checking solvability after each unification, then solve
// the combined system.
func (s *Solver) UnifyAndSolve(systems []*constraint.System) (*constraint.System, map[string]string, error) {
	canon := map[string]string{}

	ordered := append([]*constraint.System(nil), systems...)
	sort.SliceStable(ordered, func(i, j int) bool { return sysSize(ordered[i]) > sysSize(ordered[j]) })

	// The accumulated system starts from the external assumptions'
	// *graph-relevant* content so inferred symbols can unify directly
	// with user partitions (Example 6); the assumptions themselves stay
	// in s.external and are not obligations.
	combined := &constraint.System{}
	accGraphSys := s.external.Clone()

	for _, cur := range ordered {
		remaining := cur.Clone()
		// Bound the unification rounds per system: each round runs full
		// solvability checks, and in practice the first round or two find
		// everything worth merging.
		for round := 0; round < 4; round++ {
			accGraph := constraint.BuildGraph(accGraphSys)
			curGraph := constraint.BuildGraph(remaining)
			mappings := constraint.CommonSubgraphs(accGraph, curGraph)

			applied := false
			// Greedily try only the first few largest candidates (as the
			// paper notes, the largest subgraphs usually contain the
			// smaller ones, and each check runs a full solve).
			const maxTries = 6
			tries := 0
			for _, m := range mappings {
				if tries >= maxTries {
					break
				}
				// Keep only fresh→existing renamings.
				renames := map[string]string{}
				for from, to := range m {
					if from == to || s.externalSyms[from] {
						continue
					}
					renames[from] = to
				}
				if len(renames) == 0 {
					continue
				}
				candidate := applyRenames(remaining, renames)
				// §3.2: only unifications that reduce the number of
				// subset constraints are worthwhile. Compare what the
				// system would newly contribute with and without the
				// renaming (the external assumptions count as already
				// present).
				baseline := mergeSystems(s.external, combined)
				deltaAfter := subtractSystem(candidate, baseline)
				deltaBefore := subtractSystem(remaining, baseline)
				if len(deltaAfter.Subsets) >= len(deltaBefore.Subsets) {
					continue
				}
				// When the renamed conjuncts are all already present, the
				// merge changes nothing and no solvability check is
				// needed — the common case for programs whose loops share
				// structure (MiniAero's RK stages, PENNANT's phases).
				if sysSize(deltaAfter) > 0 {
					tries++
					merged := mergeSystems(combined, candidate)
					if !s.solvable(merged) {
						continue
					}
				}
				// Commit this unification.
				remaining = candidate
				for from, to := range renames {
					canon[from] = to
				}
				applied = true
				break
			}
			if !applied {
				break
			}
			// Filter conjuncts already accumulated and keep looking for
			// further common subgraphs (line 16 of Algorithm 3).
			remaining = subtractSystem(remaining, combined)
			accGraphSys = mergeSystems(s.external, combined, remaining)
		}
		combined = mergeSystems(combined, remaining)
		accGraphSys = mergeSystems(s.external, combined)
	}

	// Resolve canonical chains (a symbol may have been renamed to a
	// symbol that was itself renamed later... chains are short).
	for from := range canon {
		to := canon[from]
		for {
			next, ok := canon[to]
			if !ok {
				break
			}
			to = next
		}
		canon[from] = to
	}
	return combined, canon, nil
}

// applyRenames substitutes symbols by symbols.
func applyRenames(sys *constraint.System, renames map[string]string) *constraint.System {
	out := sys.Clone()
	for from, to := range renames {
		out.Subst(from, dpl.Var{Name: to})
	}
	return out
}

// mergeSystems conjoins systems with deduplication.
func mergeSystems(systems ...*constraint.System) *constraint.System {
	out := &constraint.System{}
	for _, sys := range systems {
		if sys == nil {
			continue
		}
		for _, p := range sys.Preds {
			out.AddPred(p)
		}
		for _, c := range sys.Subsets {
			out.AddSubset(c)
		}
	}
	return out
}

// subtractSystem removes conjuncts of b from a.
func subtractSystem(a, b *constraint.System) *constraint.System {
	out := &constraint.System{}
	for _, p := range a.Preds {
		dup := false
		for _, q := range b.Preds {
			if p.Kind == q.Kind && p.Region == q.Region && dpl.Equal(p.E, q.E) {
				dup = true
				break
			}
		}
		if !dup {
			out.AddPred(p)
		}
	}
	for _, c := range a.Subsets {
		dup := false
		for _, q := range b.Subsets {
			if dpl.Equal(c.L, q.L) && dpl.Equal(c.R, q.R) {
				dup = true
				break
			}
		}
		if !dup {
			out.AddSubset(c)
		}
	}
	return out
}

// SolveProgram is the full §3 pipeline over the inference results of all
// loops: unify, solve, and post-process the DPL program (nested-
// subexpression reuse plus CSE).
func SolveProgram(results []*infer.Result, external *constraint.System, externalSyms []string) (*Solution, error) {
	s := New(external, externalSyms)
	systems := make([]*constraint.System, len(results))
	for i, r := range results {
		systems[i] = r.Sys
	}
	combined, canon, err := s.UnifyAndSolve(systems)
	if err != nil {
		return nil, err
	}
	prog, err := s.Solve(combined)
	if err != nil {
		return nil, err
	}

	// Fill identity entries so Resolve works for every original symbol.
	for _, r := range results {
		for _, a := range r.Accesses {
			if _, ok := canon[a.Sym]; !ok {
				canon[a.Sym] = a.Sym
			}
		}
		if _, ok := canon[r.IterSym]; !ok {
			canon[r.IterSym] = r.IterSym
		}
	}

	prog = reuseSubexpressions(prog)
	prog = prog.CSE()
	ext := map[string]bool{}
	for _, sym := range externalSyms {
		ext[sym] = true
	}
	prog = orderProgram(prog, ext)
	if err := prog.TopoCheck(ext); err != nil {
		return nil, lang.Errorf("S002", lang.Span{}, "solver: internal error: %v", err)
	}

	finalSys := combined.Clone()
	for _, st := range prog.Stmts {
		finalSys.Subst(st.Name, st.Expr)
	}
	return &Solution{
		Program:      prog,
		Canon:        canon,
		System:       finalSys,
		ExternalSyms: externalSyms,
	}, nil
}

// reuseSubexpressions rewrites each statement's RHS so that nested
// subexpressions structurally equal to an earlier statement's RHS become
// references to that statement's symbol. This recovers the dependent
// structure of Fig. 10b (P4 = image(P3, ...) instead of a fully expanded
// nest) because solved equations are otherwise fully substituted.
func reuseSubexpressions(prog dpl.Program) dpl.Program {
	type def struct {
		name string
		expr dpl.Expr
		size int
	}
	var defs []def
	var out dpl.Program
	for _, st := range prog.Stmts {
		e := st.Expr
		// Replace biggest earlier definitions first so maximal sharing
		// wins.
		sort.SliceStable(defs, func(i, j int) bool { return defs[i].size > defs[j].size })
		for _, d := range defs {
			e = replaceSubexpr(e, d.expr, dpl.Var{Name: d.name})
		}
		out.Append(st.Name, e)
		defs = append(defs, def{name: st.Name, expr: st.Expr, size: dpl.Size(st.Expr)})
	}
	return out
}

// replaceSubexpr substitutes every occurrence of target (a non-Var
// expression) in e with repl; it does not replace e itself when e equals
// target at the top level (that would turn a definition into a self-
// alias) — callers replace only strictly nested occurrences.
func replaceSubexpr(e, target, repl dpl.Expr) dpl.Expr {
	rec := func(sub dpl.Expr) dpl.Expr {
		if dpl.Equal(sub, target) {
			return repl
		}
		return replaceSubexpr(sub, target, repl)
	}
	switch x := e.(type) {
	case dpl.ImageExpr:
		return dpl.ImageExpr{Of: rec(x.Of), Func: x.Func, Region: x.Region}
	case dpl.PreimageExpr:
		return dpl.PreimageExpr{Region: x.Region, Func: x.Func, Of: rec(x.Of)}
	case dpl.ImageMultiExpr:
		return dpl.ImageMultiExpr{Of: rec(x.Of), Func: x.Func, Region: x.Region}
	case dpl.PreimageMultiExpr:
		return dpl.PreimageMultiExpr{Region: x.Region, Func: x.Func, Of: rec(x.Of)}
	case dpl.BinExpr:
		return dpl.BinExpr{Op: x.Op, L: rec(x.L), R: rec(x.R)}
	default:
		return e
	}
}

// orderProgram topologically orders statements so uses follow
// definitions (reuseSubexpressions can introduce forward references when
// a later, larger definition is folded into an earlier one — ordering by
// dependencies restores a valid program).
func orderProgram(prog dpl.Program, external map[string]bool) dpl.Program {
	defined := map[string]bool{}
	for name := range external {
		defined[name] = true
	}
	pending := append([]dpl.Stmt(nil), prog.Stmts...)
	var out dpl.Program
	for len(pending) > 0 {
		progress := false
		rest := pending[:0]
		for _, st := range pending {
			ready := true
			for _, v := range dpl.FreeVars(st.Expr) {
				if !defined[v] {
					ready = false
					break
				}
			}
			if ready {
				out.Stmts = append(out.Stmts, st)
				defined[st.Name] = true
				progress = true
			} else {
				rest = append(rest, st)
			}
		}
		pending = append([]dpl.Stmt(nil), rest...)
		if !progress {
			// A dependency cycle should be impossible; emit the rest
			// as-is and let TopoCheck report it.
			out.Stmts = append(out.Stmts, pending...)
			break
		}
	}
	return out
}
