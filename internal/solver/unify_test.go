package solver

import (
	"testing"

	"autopart/internal/constraint"
)

// sysWith builds the canonical single-loop constraint shape of Fig. 7:
// an iteration partition over R (PART/COMP/DISJ) whose image under fn
// must fall inside a read partition over S.
func sysWith(iter, read, fn string) *constraint.System {
	sys := &constraint.System{}
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v(iter), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: v(iter), Region: "R"})
	sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: v(iter)})
	sys.AddPred(constraint.Pred{Kind: constraint.Part, E: v(read), Region: "S"})
	sys.AddSubset(constraint.Subset{L: img(v(iter), fn, "S"), R: v(read)})
	return sys
}

func symbols(sys *constraint.System) map[string]bool {
	out := map[string]bool{}
	for _, s := range sys.Symbols() {
		out[s] = true
	}
	return out
}

// TestUnifyIsomorphicSystems checks the positive case of Algorithm 3:
// two loops with isomorphic constraint subgraphs collapse onto one set
// of partition symbols, eliminating the duplicate subset constraint.
func TestUnifyIsomorphicSystems(t *testing.T) {
	sysA := sysWith("A1", "A2", "g")
	sysB := sysWith("B1", "B2", "g")

	combined, canon, err := New(nil, nil).UnifyAndSolve([]*constraint.System{sysA, sysB})
	if err != nil {
		t.Fatal(err)
	}

	if got := canon["B1"]; got != "A1" {
		t.Errorf("canon[B1] = %q, want A1", got)
	}
	if got := canon["B2"]; got != "A2" {
		t.Errorf("canon[B2] = %q, want A2", got)
	}
	if len(combined.Subsets) != 1 {
		t.Errorf("combined has %d subset constraints, want 1 (duplicate unified away):\n%s",
			len(combined.Subsets), combined)
	}
	syms := symbols(combined)
	for _, gone := range []string{"B1", "B2"} {
		if syms[gone] {
			t.Errorf("symbol %s survived unification:\n%s", gone, combined)
		}
	}
	for _, kept := range []string{"A1", "A2"} {
		if !syms[kept] {
			t.Errorf("symbol %s missing from combined system:\n%s", kept, combined)
		}
	}
}

// TestUnifyRejectsDifferentEdgeLabels is the negative case: graphs that
// are isomorphic except for the index-function label on an image edge
// must NOT unify — merging them would equate partitions constrained
// through different maps. Both loops' symbols survive separately.
func TestUnifyRejectsDifferentEdgeLabels(t *testing.T) {
	sysA := sysWith("A1", "A2", "g")
	sysB := sysWith("B1", "B2", "h") // same shape, different function

	combined, canon, err := New(nil, nil).UnifyAndSolve([]*constraint.System{sysA, sysB})
	if err != nil {
		t.Fatal(err)
	}

	if len(canon) != 0 {
		t.Errorf("near-isomorphic systems unified: canon = %v", canon)
	}
	if len(combined.Subsets) != 2 {
		t.Errorf("combined has %d subset constraints, want 2 (nothing merged):\n%s",
			len(combined.Subsets), combined)
	}
	syms := symbols(combined)
	for _, want := range []string{"A1", "A2", "B1", "B2"} {
		if !syms[want] {
			t.Errorf("symbol %s missing from combined system:\n%s", want, combined)
		}
	}
}

// TestUnifyRejectsDifferentRegions: nodes only pair when their PART
// regions agree, so loops over different regions keep distinct symbols
// even with identical edge structure.
func TestUnifyRejectsDifferentRegions(t *testing.T) {
	sysA := sysWith("A1", "A2", "g")
	sysB := &constraint.System{}
	sysB.AddPred(constraint.Pred{Kind: constraint.Part, E: v("B1"), Region: "T"})
	sysB.AddPred(constraint.Pred{Kind: constraint.Comp, E: v("B1"), Region: "T"})
	sysB.AddPred(constraint.Pred{Kind: constraint.Disj, E: v("B1")})
	sysB.AddPred(constraint.Pred{Kind: constraint.Part, E: v("B2"), Region: "S"})
	sysB.AddSubset(constraint.Subset{L: img(v("B1"), "g", "S"), R: v("B2")})

	_, canon, err := New(nil, nil).UnifyAndSolve([]*constraint.System{sysA, sysB})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := canon["B1"]; ok {
		t.Errorf("B1 (over region T) unified with %q (over region R)", got)
	}
}

// TestUnifyGraphCacheDebugKnob runs Algorithm 3 with
// AUTOPART_DEBUG_GRAPHCACHE=1, under which every graph served by the
// accumulated-graph cache is fingerprint-checked against a fresh
// BuildGraph and a mismatch panics. A clean multi-loop run proves the
// incremental extension path produces exactly the graphs a full rebuild
// would.
func TestUnifyGraphCacheDebugKnob(t *testing.T) {
	t.Setenv("AUTOPART_DEBUG_GRAPHCACHE", "1")
	sysA := sysWith("A1", "A2", "g")
	sysB := sysWith("B1", "B2", "g")
	sysC := sysWith("C1", "C2", "h") // does not unify; exercises more rounds
	s := New(nil, nil)
	_, canon, err := s.UnifyAndSolve([]*constraint.System{sysA, sysB, sysC})
	if err != nil {
		t.Fatal(err)
	}
	if canon["B1"] != "A1" {
		t.Errorf("canon = %v, want B1→A1", canon)
	}
	stats := s.Stats()
	if stats.GraphBuilds == 0 {
		t.Error("no graph builds recorded")
	}
	if stats.GraphExtends == 0 {
		t.Error("no incremental graph extensions recorded — cache not exercised")
	}
	if stats.UnifyNS <= 0 {
		t.Errorf("UnifyNS = %d, want > 0", stats.UnifyNS)
	}
}

// TestUnifyAcrossLoopsEndToEnd drives Algorithm 3 from DSL source: two
// loops with identical access structure must share partition symbols in
// the solved program.
func TestUnifyAcrossLoopsEndToEnd(t *testing.T) {
	src := `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar }
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel)
}
for q in Particles {
  d = Particles[q].cell
  Particles[q].pos += g(Cells[d].vel)
}
`
	sol := solveSrc(t, src)

	merged := 0
	for from, to := range sol.Canon {
		if from != to {
			merged++
		}
	}
	if merged == 0 {
		t.Fatalf("no symbols unified across isomorphic loops; canon = %v", sol.Canon)
	}
	// Both loops resolve their iteration and read partitions to the same
	// canonical symbols, so the DPL program needs only one partition pair.
	targets := map[string]bool{}
	for _, to := range sol.Canon {
		targets[to] = true
	}
	if len(targets) >= len(sol.Canon) {
		t.Errorf("unification did not reduce distinct symbols: %d targets for %d symbols",
			len(targets), len(sol.Canon))
	}
}
