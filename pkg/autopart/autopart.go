// Package autopart is the public API of the constraint-based automatic
// data partitioning system (Lee et al., SC '19): compile a sequential
// loop program into partitioning constraints, solve them into a DPL
// program, evaluate the partitions against concrete data, and execute
// the parallelized loops.
//
// The pipeline is:
//
//	Compile       source → AST → IR → constraints → (relax) → unify+solve
//	              → private sub-partitions → parallel loops
//	NewContext    wire concrete regions and index maps for DPL evaluation
//	Evaluate      run the DPL program, producing concrete partitions
//	NewExecutor   run the parallel loops with parallel semantics
package autopart

import (
	"fmt"
	"io"
	"os"
	"time"

	"autopart/internal/constraint"
	"autopart/internal/diag"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/par"
	"autopart/internal/pipeline"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/solver"
)

// Options configure compilation.
type Options struct {
	// DisableRelaxation turns off the §5.1 disjointness relaxation.
	DisableRelaxation bool
	// DisablePrivateSubPartitions turns off the §5.2 optimization.
	DisablePrivateSubPartitions bool
	// ForceSequential switches the evaluation engine (partition
	// operators, the scaling simulator) to sequential mode for
	// debugging. The switch is process-wide, exactly like calling
	// SequentialEvaluation(true) or setting AUTOPART_SEQUENTIAL=1 in the
	// environment; parallel and sequential modes produce bit-identical
	// partitions and figures.
	ForceSequential bool
	// Trace, when non-nil, receives one JSON line per compiler pass
	// (name, index, wall time, artifact metrics). Setting AUTOPART_TRACE
	// to a non-empty value other than "0" traces to stderr without code
	// changes.
	Trace io.Writer
	// Observers receive pass lifecycle events in addition to any Trace
	// writer; see pipeline.Observer.
	Observers []pipeline.Observer
}

// SequentialEvaluation forces (or, with false, re-enables parallelism
// for) the evaluation engine's worker pool, process-wide. Sequential
// and parallel evaluation are differential-tested to produce identical
// results; the knob exists to simplify debugging and profiling. The
// AUTOPART_SEQUENTIAL environment variable provides the same switch
// without code changes.
func SequentialEvaluation(v bool) { par.SetSequential(v) }

// Timing is the per-phase compile-time breakdown (Table 1's rows).
type Timing struct {
	Parse     time.Duration
	Inference time.Duration
	Solver    time.Duration
	Rewrite   time.Duration
}

// Total sums the phases.
func (t Timing) Total() time.Duration {
	return t.Parse + t.Inference + t.Solver + t.Rewrite
}

// Compiled is the result of compiling a source program.
type Compiled struct {
	Source       *lang.Program
	Loops        []*ir.Loop
	Inference    []*infer.Result
	Plans        []*optimize.LoopPlan
	Solution     *solver.Solution
	Private      *optimize.PrivatePlan
	Parallel     []*rewrite.ParallelLoop
	External     *constraint.System
	ExternalSyms []string
	Timing       Timing
	// Diagnostics holds the structured diagnostics accumulated during
	// compilation (empty on success today; a failed Compile records the
	// failure here with its source span and code).
	Diagnostics []diag.Diagnostic
}

// Compile runs the staged pass pipeline (internal/pipeline) on DSL
// source text. It is a thin façade: passes are resolved from the
// pipeline registry, timing is derived from a per-pass observer, and
// tracing/observability hooks attach via Options.
func Compile(src string, opts Options) (*Compiled, error) {
	c, _, err := compile(src, opts)
	return c, err
}

// CompileSession runs the pipeline and additionally returns the
// pipeline session, exposing per-pass artifacts and accumulated
// diagnostics even when compilation fails (the Compiled result is nil
// on error).
func CompileSession(src string, opts Options) (*Compiled, *pipeline.Session, error) {
	return compile(src, opts)
}

func compile(src string, opts Options) (*Compiled, *pipeline.Session, error) {
	if opts.Trace == nil && traceEnvEnabled() {
		opts.Trace = os.Stderr
	}
	// Hold an intern-table epoch for the duration of the compile so a
	// bounded table (configured by a Service sharing this process) never
	// reclaims mid-compile — expression and symbol ids stay coherent for
	// every pass.
	ep := dpl.Default().Enter()
	defer ep.Leave()

	s := pipeline.NewSession(src, pipeline.Config{
		DisableRelaxation:           opts.DisableRelaxation,
		DisablePrivateSubPartitions: opts.DisablePrivateSubPartitions,
	})
	return runSession(s, opts)
}

// traceEnvEnabled reports whether AUTOPART_TRACE asks for stderr
// tracing. Compile consults it per call; a Service reads it once at
// construction.
func traceEnvEnabled() bool {
	v := os.Getenv("AUTOPART_TRACE")
	return v != "" && v != "0"
}

// runSession executes the pass pipeline over a prepared session and
// assembles the Compiled result. Both the one-shot Compile façade and
// the pooled Service funnel through here, so results are identical
// regardless of which entry point produced them.
func runSession(s *pipeline.Session, opts Options) (*Compiled, *pipeline.Session, error) {
	if opts.ForceSequential {
		par.SetSequential(true)
	}

	timing := pipeline.NewTimingObserver()
	obs := []pipeline.Observer{timing}
	if opts.Trace != nil {
		obs = append(obs, pipeline.TraceObserver{W: opts.Trace})
	}
	obs = append(obs, opts.Observers...)

	if err := pipeline.NewRunner(obs...).Run(s); err != nil {
		return nil, s, err
	}
	return buildCompiled(s, timing), s, nil
}

// buildCompiled lifts the session's artifacts into the public result
// shape.
func buildCompiled(s *pipeline.Session, timing *pipeline.TimingObserver) *Compiled {
	return &Compiled{
		Source:       s.Program,
		Loops:        s.Loops,
		Inference:    s.Inference,
		Plans:        s.Plans,
		Solution:     s.Solution,
		Private:      s.Private,
		Parallel:     s.Parallel,
		External:     s.External,
		ExternalSyms: s.ExternalSyms,
		Diagnostics:  append([]diag.Diagnostic(nil), s.Diags...),
		// Timing keeps its historical four-phase shape (Table 1's rows),
		// derived from the finer-grained pass timings.
		Timing: Timing{
			Parse:     timing.Duration("parse") + timing.Duration("check"),
			Inference: timing.Duration("normalize") + timing.Duration("infer"),
			Solver:    timing.Duration("relax") + timing.Duration("solve") + timing.Duration("private"),
			Rewrite:   timing.Duration("rewrite"),
		},
	}
}

// DPLProgram returns the synthesized DPL program including private
// sub-partition statements.
func (c *Compiled) DPLProgram() dpl.Program {
	prog := dpl.Program{Stmts: append([]dpl.Stmt(nil), c.Solution.Program.Stmts...)}
	if c.Private != nil {
		prog.Stmts = append(prog.Stmts, c.Private.Extra.Stmts...)
	}
	return prog
}

// NewContext builds a DPL evaluation context from a machine: all regions
// are registered, every declared index function is taken from the
// machine, and pointer/range field maps are derived from region data
// under their canonical "R[·].f" names.
func (c *Compiled) NewContext(colors int, m *ir.Machine) (*dpl.Context, error) {
	ctx := dpl.NewContext(colors)
	for _, decl := range c.Source.Regions {
		r, ok := m.Regions[decl.Name]
		if !ok {
			return nil, fmt.Errorf("autopart: machine lacks region %q", decl.Name)
		}
		ctx.AddRegion(r)
		for _, f := range decl.Fields {
			name := fmt.Sprintf("%s[·].%s", decl.Name, f.Name)
			switch f.Kind {
			case lang.IndexKind:
				ctx.AddMap(name, r.PointerMap(f.Name))
			case lang.RangeKind:
				ctx.AddMultiMap(name, r.RangeMap(f.Name))
			}
		}
	}
	for _, f := range c.Source.Funcs {
		fn, ok := m.Funcs[f.Name]
		if !ok {
			return nil, fmt.Errorf("autopart: machine lacks index function %q", f.Name)
		}
		ctx.AddMap(f.Name, fn)
	}
	return ctx, nil
}

// Evaluate runs the DPL program in the context. External partitions must
// already be bound in the context (ctx.Bind). It returns the partitions
// for every program symbol plus the externals.
func (c *Compiled) Evaluate(ctx *dpl.Context) (map[string]*region.Partition, error) {
	parts, err := c.DPLProgram().Eval(ctx)
	if err != nil {
		return nil, err
	}
	for _, sym := range c.ExternalSyms {
		p, ok := ctx.Binding(sym)
		if !ok {
			return nil, fmt.Errorf("autopart: external partition %q not bound", sym)
		}
		parts[sym] = p
	}
	return parts, nil
}

// NewExecutor wires an executor with all evaluated partitions bound.
func (c *Compiled) NewExecutor(m *ir.Machine, parts map[string]*region.Partition) *rewrite.Executor {
	ex := rewrite.NewExecutor(m)
	for sym, p := range parts {
		ex.Bind(sym, p)
	}
	return ex
}

// RunParallel executes every parallel loop once (one outer "main loop"
// iteration), in program order. Partitions are re-evaluated before each
// launch, mirroring dependent partitioning semantics: a launch that
// rewrites pointer fields (Fig. 4) changes the partitions later launches
// derive from them.
func (c *Compiled) RunParallel(m *ir.Machine, colors int, external map[string]*region.Partition) error {
	for _, pl := range c.Parallel {
		ctx, err := c.NewContext(colors, m)
		if err != nil {
			return err
		}
		for sym, p := range external {
			ctx.Bind(sym, p)
		}
		parts, err := c.Evaluate(ctx)
		if err != nil {
			return err
		}
		ex := c.NewExecutor(m, parts)
		if err := ex.RunLaunch(pl); err != nil {
			return fmt.Errorf("%s: %w", pl, err)
		}
	}
	return nil
}

// RunSequential executes every loop once with the reference sequential
// semantics.
func (c *Compiled) RunSequential(m *ir.Machine) error {
	for _, l := range c.Loops {
		if err := m.RunSequential(l); err != nil {
			return err
		}
	}
	return nil
}
