// Package autopart is the public API of the constraint-based automatic
// data partitioning system (Lee et al., SC '19): compile a sequential
// loop program into partitioning constraints, solve them into a DPL
// program, evaluate the partitions against concrete data, and execute
// the parallelized loops.
//
// The pipeline is:
//
//	Compile       source → AST → IR → constraints → (relax) → unify+solve
//	              → private sub-partitions → parallel loops
//	NewContext    wire concrete regions and index maps for DPL evaluation
//	Evaluate      run the DPL program, producing concrete partitions
//	NewExecutor   run the parallel loops with parallel semantics
package autopart

import (
	"fmt"
	"time"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/optimize"
	"autopart/internal/par"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/solver"
)

// Options configure compilation.
type Options struct {
	// DisableRelaxation turns off the §5.1 disjointness relaxation.
	DisableRelaxation bool
	// DisablePrivateSubPartitions turns off the §5.2 optimization.
	DisablePrivateSubPartitions bool
	// ForceSequential switches the evaluation engine (partition
	// operators, the scaling simulator) to sequential mode for
	// debugging. The switch is process-wide, exactly like calling
	// SequentialEvaluation(true) or setting AUTOPART_SEQUENTIAL=1 in the
	// environment; parallel and sequential modes produce bit-identical
	// partitions and figures.
	ForceSequential bool
}

// SequentialEvaluation forces (or, with false, re-enables parallelism
// for) the evaluation engine's worker pool, process-wide. Sequential
// and parallel evaluation are differential-tested to produce identical
// results; the knob exists to simplify debugging and profiling. The
// AUTOPART_SEQUENTIAL environment variable provides the same switch
// without code changes.
func SequentialEvaluation(v bool) { par.SetSequential(v) }

// Timing is the per-phase compile-time breakdown (Table 1's rows).
type Timing struct {
	Parse     time.Duration
	Inference time.Duration
	Solver    time.Duration
	Rewrite   time.Duration
}

// Total sums the phases.
func (t Timing) Total() time.Duration {
	return t.Parse + t.Inference + t.Solver + t.Rewrite
}

// Compiled is the result of compiling a source program.
type Compiled struct {
	Source       *lang.Program
	Loops        []*ir.Loop
	Inference    []*infer.Result
	Plans        []*optimize.LoopPlan
	Solution     *solver.Solution
	Private      *optimize.PrivatePlan
	Parallel     []*rewrite.ParallelLoop
	External     *constraint.System
	ExternalSyms []string
	Timing       Timing
}

// Compile runs the full pipeline on DSL source text.
func Compile(src string, opts Options) (*Compiled, error) {
	if opts.ForceSequential {
		par.SetSequential(true)
	}
	c := &Compiled{}

	start := time.Now()
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	c.Source = prog
	c.Timing.Parse = time.Since(start)

	start = time.Now()
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("normalize: %w", err)
	}
	c.Loops = loops
	results, err := infer.New(prog).InferProgram(loops)
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	c.Inference = results
	c.External, c.ExternalSyms = infer.ExternalSystem(prog)
	c.Timing.Inference = time.Since(start)

	start = time.Now()
	if opts.DisableRelaxation {
		c.Plans = make([]*optimize.LoopPlan, len(results))
		for i, r := range results {
			c.Plans[i] = &optimize.LoopPlan{Res: r, Sys: r.Sys}
		}
	} else {
		c.Plans = optimize.Relax(results)
	}

	sol, err := solver.SolveProgram(resultsOf(c.Plans), c.External, c.ExternalSyms)
	if err == nil {
		c.Solution = sol
	} else if !opts.DisableRelaxation && anyRelaxed(c.Plans) {
		// Fall back to the unrelaxed systems if relaxation made the
		// system unsolvable.
		for _, p := range c.Plans {
			p.Sys = p.Res.Sys
			p.Relaxed = false
			p.GuardedSyms = nil
		}
		sol, err = solver.SolveProgram(resultsOf(c.Plans), c.External, c.ExternalSyms)
		if err == nil {
			c.Solution = sol
		}
	}
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}

	if !opts.DisablePrivateSubPartitions {
		c.Private = optimize.FindPrivateSubPartitions(c.Plans, c.Solution, c.External)
	}
	c.Timing.Solver = time.Since(start)

	start = time.Now()
	c.Parallel = rewrite.Build(c.Plans, c.Solution, c.Private)
	c.Timing.Rewrite = time.Since(start)
	return c, nil
}

// resultsOf substitutes the (possibly relaxed) systems into the
// inference results the solver consumes. The solver only reads Sys,
// IterSym, and Accesses; we pass shallow copies with Sys swapped.
func resultsOf(plans []*optimize.LoopPlan) []*infer.Result {
	out := make([]*infer.Result, len(plans))
	for i, p := range plans {
		clone := *p.Res
		clone.Sys = p.Sys
		out[i] = &clone
	}
	return out
}

func anyRelaxed(plans []*optimize.LoopPlan) bool {
	for _, p := range plans {
		if p.Relaxed {
			return true
		}
	}
	return false
}

// DPLProgram returns the synthesized DPL program including private
// sub-partition statements.
func (c *Compiled) DPLProgram() dpl.Program {
	prog := dpl.Program{Stmts: append([]dpl.Stmt(nil), c.Solution.Program.Stmts...)}
	if c.Private != nil {
		prog.Stmts = append(prog.Stmts, c.Private.Extra.Stmts...)
	}
	return prog
}

// NewContext builds a DPL evaluation context from a machine: all regions
// are registered, every declared index function is taken from the
// machine, and pointer/range field maps are derived from region data
// under their canonical "R[·].f" names.
func (c *Compiled) NewContext(colors int, m *ir.Machine) (*dpl.Context, error) {
	ctx := dpl.NewContext(colors)
	for _, decl := range c.Source.Regions {
		r, ok := m.Regions[decl.Name]
		if !ok {
			return nil, fmt.Errorf("autopart: machine lacks region %q", decl.Name)
		}
		ctx.AddRegion(r)
		for _, f := range decl.Fields {
			name := fmt.Sprintf("%s[·].%s", decl.Name, f.Name)
			switch f.Kind {
			case lang.IndexKind:
				ctx.AddMap(name, r.PointerMap(f.Name))
			case lang.RangeKind:
				ctx.AddMultiMap(name, r.RangeMap(f.Name))
			}
		}
	}
	for _, f := range c.Source.Funcs {
		fn, ok := m.Funcs[f.Name]
		if !ok {
			return nil, fmt.Errorf("autopart: machine lacks index function %q", f.Name)
		}
		ctx.AddMap(f.Name, fn)
	}
	return ctx, nil
}

// Evaluate runs the DPL program in the context. External partitions must
// already be bound in the context (ctx.Bind). It returns the partitions
// for every program symbol plus the externals.
func (c *Compiled) Evaluate(ctx *dpl.Context) (map[string]*region.Partition, error) {
	parts, err := c.DPLProgram().Eval(ctx)
	if err != nil {
		return nil, err
	}
	for _, sym := range c.ExternalSyms {
		p, ok := ctx.Binding(sym)
		if !ok {
			return nil, fmt.Errorf("autopart: external partition %q not bound", sym)
		}
		parts[sym] = p
	}
	return parts, nil
}

// NewExecutor wires an executor with all evaluated partitions bound.
func (c *Compiled) NewExecutor(m *ir.Machine, parts map[string]*region.Partition) *rewrite.Executor {
	ex := rewrite.NewExecutor(m)
	for sym, p := range parts {
		ex.Bind(sym, p)
	}
	return ex
}

// RunParallel executes every parallel loop once (one outer "main loop"
// iteration), in program order. Partitions are re-evaluated before each
// launch, mirroring dependent partitioning semantics: a launch that
// rewrites pointer fields (Fig. 4) changes the partitions later launches
// derive from them.
func (c *Compiled) RunParallel(m *ir.Machine, colors int, external map[string]*region.Partition) error {
	for _, pl := range c.Parallel {
		ctx, err := c.NewContext(colors, m)
		if err != nil {
			return err
		}
		for sym, p := range external {
			ctx.Bind(sym, p)
		}
		parts, err := c.Evaluate(ctx)
		if err != nil {
			return err
		}
		ex := c.NewExecutor(m, parts)
		if err := ex.RunLaunch(pl); err != nil {
			return fmt.Errorf("%s: %w", pl, err)
		}
	}
	return nil
}

// RunSequential executes every loop once with the reference sequential
// semantics.
func (c *Compiled) RunSequential(m *ir.Machine) error {
	for _, l := range c.Loops {
		if err := m.RunSequential(l); err != nil {
			return err
		}
	}
	return nil
}
