package autopart

import (
	"math/rand"
	"strings"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
)

// differential runs the same program sequentially and in parallel on two
// copies of the same machine state and requires bit-identical results.
func differential(t *testing.T, src string, colors int, build func() *ir.Machine) {
	t.Helper()
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqM := build()
	parM := build()

	if err := c.RunSequential(seqM); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if err := c.RunParallel(parM, colors, nil); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs after parallel execution: %s\nDPL:\n%s",
				name, diff, c.DPLProgram())
		}
	}
}

const figure1Src = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func figure1Machine(nParticles, nCells int64, seed int64) func() *ir.Machine {
	return func() *ir.Machine {
		rng := rand.New(rand.NewSource(seed))
		particles := region.New("Particles", nParticles)
		particles.AddIndexField("cell")
		particles.AddScalarField("pos")
		cells := region.New("Cells", nCells)
		cells.AddScalarField("vel")
		cells.AddScalarField("acc")
		cellOf := particles.Index("cell")
		for i := range cellOf {
			cellOf[i] = rng.Int63n(nCells)
		}
		vel := cells.Scalar("vel")
		acc := cells.Scalar("acc")
		for i := range vel {
			vel[i] = float64(rng.Intn(100))
			acc[i] = float64(rng.Intn(100))
		}
		m := ir.NewMachine().AddRegion(particles).AddRegion(cells)
		m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: nCells})
		return m
	}
}

func TestDifferentialFigure1(t *testing.T) {
	for _, colors := range []int{1, 2, 4, 7} {
		differential(t, figure1Src, colors, figure1Machine(120, 30, 42))
	}
}

func TestCompileFigure1Structure(t *testing.T) {
	c, err := Compile(figure1Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 2 || len(c.Loops) != 2 {
		t.Fatalf("parallel loops = %d", len(c.Parallel))
	}
	text := c.Solution.Program.String()
	if !strings.Contains(text, "equal(Cells)") || !strings.Contains(text, "preimage(Particles") {
		t.Errorf("unexpected strategy:\n%s", text)
	}
	if c.Timing.Total() <= 0 {
		t.Error("timings should be positive")
	}
}

const spmvSrc = `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }
for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`

// spmvMachine builds a CSR matrix with a random band structure.
func spmvMachine(rows int64, seed int64) func() *ir.Machine {
	return func() *ir.Machine {
		rng := rand.New(rand.NewSource(seed))
		// Random nonzeros per row: 0..4.
		counts := make([]int64, rows)
		var nnz int64
		for i := range counts {
			counts[i] = rng.Int63n(5)
			nnz += counts[i]
		}
		y := region.New("Y", rows)
		y.AddScalarField("val")
		ranges := region.New("Ranges", rows)
		ranges.AddRangeField("span")
		mat := region.New("Mat", nnz)
		mat.AddScalarField("val")
		mat.AddIndexField("ind")
		x := region.New("X", rows)
		x.AddScalarField("val")

		spans := ranges.Ranges("span")
		var off int64
		for i := int64(0); i < rows; i++ {
			spans[i] = geometry.Interval{Lo: off, Hi: off + counts[i]}
			off += counts[i]
		}
		vals := mat.Scalar("val")
		inds := mat.Index("ind")
		for j := range vals {
			vals[j] = float64(rng.Intn(10))
			inds[j] = rng.Int63n(rows)
		}
		xv := x.Scalar("val")
		for i := range xv {
			xv[i] = float64(rng.Intn(10))
		}
		return ir.NewMachine().AddRegion(y).AddRegion(ranges).AddRegion(mat).AddRegion(x)
	}
}

func TestDifferentialSpMV(t *testing.T) {
	for _, colors := range []int{1, 3, 8} {
		differential(t, spmvSrc, colors, spmvMachine(64, 7))
	}
}

const multiReduceSrc = `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`

func multiReduceMachine(n int64, seed int64) func() *ir.Machine {
	return func() *ir.Machine {
		rng := rand.New(rand.NewSource(seed))
		r := region.New("R", n)
		r.AddScalarField("v")
		s := region.New("S", n)
		s.AddScalarField("w")
		rv := r.Scalar("v")
		for i := range rv {
			rv[i] = float64(rng.Intn(50))
		}
		m := ir.NewMachine().AddRegion(r).AddRegion(s)
		m.AddFunc("f", geometry.AffineMap{Name: "f", Stride: 1, Offset: 3, Modulo: n})
		m.AddFunc("g", geometry.AffineMap{Name: "g", Stride: 1, Offset: -5, Modulo: n})
		return m
	}
}

func TestDifferentialMultiReduceRelaxed(t *testing.T) {
	// Fig. 11: the §5.1 relaxation must produce a guarded, aliased
	// iteration partition and still match sequential execution exactly.
	c, err := Compile(multiReduceSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Plans[0].Relaxed {
		t.Fatalf("loop should be relaxed; system:\n%s", c.Plans[0].Sys)
	}
	// The iteration partition must be a union of preimages.
	text := c.Solution.Program.String()
	if !strings.Contains(text, "preimage(R, f,") || !strings.Contains(text, "preimage(R, g,") ||
		!strings.Contains(text, "∪") {
		t.Errorf("expected union-of-preimages iteration partition:\n%s", text)
	}
	for _, colors := range []int{1, 2, 5} {
		differential(t, multiReduceSrc, colors, multiReduceMachine(60, 11))
	}
}

func TestDifferentialMultiReduceUnrelaxed(t *testing.T) {
	// With relaxation disabled the loop needs a disjoint iteration
	// partition and reduction buffers; results must still match.
	c, err := Compile(multiReduceSrc, Options{DisableRelaxation: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Plans[0].Relaxed {
		t.Fatal("relaxation should be disabled")
	}
	build := multiReduceMachine(60, 13)
	seqM, parM := build(), build()
	if err := c.RunSequential(seqM); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parM, 4, nil); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

const stencilSrc = `
region Grid { vin: scalar, vout: scalar }
function left : Grid -> Grid
function right : Grid -> Grid
for i in Grid {
  if (left(i) in Grid) {
    Grid[i].vout += Grid[left(i)].vin
  }
  if (right(i) in Grid) {
    Grid[i].vout += Grid[right(i)].vin
  }
  Grid[i].vout += Grid[i].vin
}
`

func stencilMachine(n int64, seed int64) func() *ir.Machine {
	return func() *ir.Machine {
		rng := rand.New(rand.NewSource(seed))
		g := region.New("Grid", n)
		g.AddScalarField("vin")
		g.AddScalarField("vout")
		in := g.Scalar("vin")
		for i := range in {
			in[i] = float64(rng.Intn(100))
		}
		clamp := geometry.Interval{Lo: 0, Hi: n}
		m := ir.NewMachine().AddRegion(g)
		m.AddFunc("left", geometry.AffineMap{Name: "left", Stride: 1, Offset: -1, Clamp: &clamp})
		m.AddFunc("right", geometry.AffineMap{Name: "right", Stride: 1, Offset: 1, Clamp: &clamp})
		return m
	}
}

func TestDifferentialStencil(t *testing.T) {
	for _, colors := range []int{1, 2, 4} {
		differential(t, stencilSrc, colors, stencilMachine(64, 3))
	}
}

func TestPointerReadAfterWriteRejected(t *testing.T) {
	// Loading an index field after storing it in the same loop would
	// make the launch-time partitions stale; inference must reject it.
	src := `
region P { cell: index(C), pos: scalar }
region C { v: scalar }
function locate : P -> C
for i in P {
  new_cell = locate(i)
  P[i].cell = new_cell
  P[i].pos += C[P[i].cell].v
}
`
	_, err := Compile(src, Options{})
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("expected staleness rejection, got %v", err)
	}
}

func pointerMachine(n int64, seed int64) func() *ir.Machine {
	return func() *ir.Machine {
		rng := rand.New(rand.NewSource(seed))
		p := region.New("P", n)
		p.AddIndexField("cell")
		p.AddScalarField("pos")
		c := region.New("C", n)
		c.AddScalarField("v")
		cell := p.Index("cell")
		for i := range cell {
			cell[i] = rng.Int63n(n)
		}
		cv := c.Scalar("v")
		for i := range cv {
			cv[i] = float64(rng.Intn(100))
		}
		m := ir.NewMachine().AddRegion(p).AddRegion(c)
		// locate(i) = (i+1) mod n: every particle moves each step.
		m.AddFunc("locate", geometry.AffineMap{Name: "locate", Stride: 1, Offset: 1, Modulo: n})
		return m
	}
}

func TestDifferentialPointerUpdateFig4Pattern(t *testing.T) {
	// Fig. 4's legal pattern: load the pointer, compare, store — the
	// store happens after all loads of the field in the loop.
	src := `
region P { cell: index(C), pos: scalar }
region C { v: scalar }
function locate : P -> C
for i in P {
  new_cell = locate(i)
  c = P[i].cell
  P[i].pos += C[c].v
  if (c != new_cell) {
    P[i].cell = new_cell
  }
}
`
	differential(t, src, 4, pointerMachine(40, 5))
}

func TestDifferentialCrossLaunchPointerUpdate(t *testing.T) {
	// A first loop rewrites the pointers; a second loop gathers through
	// them. Partitions must be re-evaluated between launches.
	src := `
region P { cell: index(C), pos: scalar }
region C { v: scalar }
function locate : P -> C
for i in P {
  P[i].cell = locate(i)
}
for j in P {
  P[j].pos += C[P[j].cell].v
}
`
	differential(t, src, 4, pointerMachine(40, 9))
}

func TestExternalPartitionFlow(t *testing.T) {
	// Example 6 end-to-end: user-provided partitions drive the solution
	// and parallel execution matches sequential execution.
	src := `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
extern partition pParticles of Particles
extern partition pCells of Cells
assert image(pParticles, Particles.cell, Cells) <= pCells
assert disjoint(pParticles)
assert complete(pParticles, Particles)
assert disjoint(pCells)
assert complete(pCells, Cells)
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const colors = 4
	build := figure1Machine(120, 32, 17)

	// Build external partitions satisfying the invariant: cells split
	// equally, particles by preimage.
	mkExternal := func(m *ir.Machine) map[string]*region.Partition {
		cells := m.Regions["Cells"]
		particles := m.Regions["Particles"]
		pCells := region.Equal("pCells", cells, colors)
		pParticles := region.Preimage("pParticles", particles, particles.PointerMap("cell"), pCells)
		return map[string]*region.Partition{"pCells": pCells, "pParticles": pParticles}
	}

	seqM, parM := build(), build()
	if err := c.RunSequential(seqM); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parM, colors, mkExternal(parM)); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestUnsoundExternalPartitionDetected(t *testing.T) {
	// If the user's external partitions violate the asserted invariant,
	// the executor's containment check must catch the escape.
	src := `
region P { cell: index(C), pos: scalar }
region C { v: scalar }
extern partition pP of P
extern partition pC of C
assert image(pP, P.cell, C) <= pC
assert disjoint(pP)
assert complete(pP, P)
assert disjoint(pC)
assert complete(pC, C)
for i in P {
  P[i].pos += C[P[i].cell].v
}
`
	c, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := region.New("P", 16)
	p.AddIndexField("cell")
	p.AddScalarField("pos")
	cr := region.New("C", 16)
	cr.AddScalarField("v")
	cell := p.Index("cell")
	for i := range cell {
		cell[i] = int64(15 - i) // reversed pointers
	}
	m := ir.NewMachine().AddRegion(p).AddRegion(cr)

	// Deliberately violating externals: both equal partitions, so the
	// asserted image(pP, cell, C) ⊆ pC is false for the reversed
	// pointers.
	ext := map[string]*region.Partition{
		"pP": region.Equal("pP", p, 4),
		"pC": region.Equal("pC", cr, 4),
	}
	err = c.RunParallel(m, 4, ext)
	if err == nil || !strings.Contains(err.Error(), "escapes subregion") {
		t.Fatalf("expected containment violation, got %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"region R {", // parse error
		"region R { v: scalar } for i in R { R[j].v = 1 }", // normalize error
		`region R { p: index(R), v: scalar }
for i in R {
  q = R[i].p
  R[q].v = 1
}`, // not parallelizable
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestQuickDifferentialRandomPrograms(t *testing.T) {
	// Randomized differential testing over a family of gather/scatter
	// programs: random pointer targets, random affine offsets, random
	// mixes of centered and uncentered accesses.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := int64(20 + rng.Intn(60))
		offset := int64(rng.Intn(7)) - 3
		var sb strings.Builder
		sb.WriteString("region A { ptr: index(B), x: scalar }\n")
		sb.WriteString("region B { y: scalar, z: scalar }\n")
		sb.WriteString("function nb : B -> B\n")
		sb.WriteString("for i in A {\n")
		sb.WriteString("  p = A[i].ptr\n")
		switch trial % 3 {
		case 0: // gather
			sb.WriteString("  A[i].x += f(B[p].y, B[nb(p)].y)\n")
		case 1: // scatter-reduce
			sb.WriteString("  B[p].z += A[i].x\n")
		case 2: // both fields
			sb.WriteString("  A[i].x += B[p].y\n")
			sb.WriteString("  B[p].z += A[i].x\n")
		}
		sb.WriteString("}\n")
		src := sb.String()

		build := func() *ir.Machine {
			r := rand.New(rand.NewSource(int64(trial)*1000 + 5))
			a := region.New("A", n)
			a.AddIndexField("ptr")
			a.AddScalarField("x")
			b := region.New("B", n)
			b.AddScalarField("y")
			b.AddScalarField("z")
			ptr := a.Index("ptr")
			for i := range ptr {
				ptr[i] = r.Int63n(n)
			}
			for i := range a.Scalar("x") {
				a.Scalar("x")[i] = float64(r.Intn(20))
				b.Scalar("y")[i] = float64(r.Intn(20))
			}
			m := ir.NewMachine().AddRegion(a).AddRegion(b)
			m.AddFunc("nb", geometry.AffineMap{Name: "nb", Stride: 1, Offset: offset, Modulo: n})
			return m
		}
		colors := 1 + rng.Intn(6)
		differential(t, src, colors, build)
	}
}
