package autopart_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"autopart/internal/apps/builtins"
	"autopart/internal/lang"
	"autopart/internal/runtime"
	"autopart/pkg/autopart"
)

// This file is the differential harness for incremental recompilation:
// every incremental compile must produce output byte-identical to a
// cold full compile of the same source — including failures, which must
// carry the same error text. The replay test drives seeded randomized
// single-loop edits across the builtin programs; the targeted tests pin
// the edge cases (comment-only edits, whitespace churn, loop
// reordering, header renames, panic recovery).

// renderCompiled serializes everything semantically observable about a
// compile result: per-loop plans, the synthesized DPL program, the
// obligation system, private sub-partitions, and the launch structure.
func renderFull(c *autopart.Compiled) string {
	var b strings.Builder
	for i, plan := range c.Plans {
		fmt.Fprintf(&b, "loop %d: for %s in %s relaxed=%v\n  %s\n",
			i, c.Loops[i].Var, c.Loops[i].Region, plan.Relaxed, plan.Sys)
	}
	b.WriteString("program:\n")
	b.WriteString(c.Solution.Program.String())
	b.WriteString("\nobligations:\n")
	fmt.Fprintf(&b, "%s\n", c.Solution.System)
	if c.Private != nil {
		b.WriteString("private:\n")
		b.WriteString(c.Private.Extra.String())
		b.WriteString("\n")
	}
	for i, pl := range c.Parallel {
		fmt.Fprintf(&b, "launch %s\n", runtime.FromParallelLoop(fmt.Sprintf("loop%d", i), pl))
	}
	return b.String()
}

// mutateLoop applies one syntactically plausible edit to a random
// top-level loop. Edits may make the program invalid — the harness then
// checks that incremental and cold compiles fail with identical errors.
func mutateLoop(t *testing.T, src string, rnd *rand.Rand, step int) string {
	t.Helper()
	seg, err := lang.SplitSource(src)
	if err != nil {
		t.Fatalf("step %d: source no longer segmentable: %v", step, err)
	}
	if len(seg.Loops) == 0 {
		t.Fatalf("step %d: no loops to edit", step)
	}
	s := seg.LoopSeg(rnd.Intn(len(seg.Loops)))
	loop := src[s.Start:s.End]
	switch rnd.Intn(4) {
	case 0: // comment-only edit: fingerprint unchanged, loop stays clean
		i := strings.Index(loop, "{")
		loop = loop[:i+1] + fmt.Sprintf(" // edit %d", step) + loop[i+1:]
	case 1: // duplicate a statement line: loop goes dirty
		if line, ok := statementLine(loop); ok {
			loop = strings.Replace(loop, line, line+line, 1)
		} else {
			i := strings.Index(loop, "{")
			loop = loop[:i+1] + fmt.Sprintf(" // edit %d", step) + loop[i+1:]
		}
	case 2: // whitespace churn: fingerprint unchanged
		loop = strings.ReplaceAll(loop, "\n", "\n ")
	case 3: // delete a statement line: dirty, possibly now invalid
		if line, ok := statementLine(loop); ok {
			loop = strings.Replace(loop, line, "", 1)
		}
	}
	return src[:s.Start] + loop + src[s.End:]
}

// statementLine picks the first full line inside the loop body that is
// a plain statement (non-empty, no braces), returned with its trailing
// newline so it can be duplicated or deleted in place.
func statementLine(loop string) (string, bool) {
	for _, line := range strings.SplitAfter(loop, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || !strings.HasSuffix(line, "\n") {
			continue
		}
		if strings.ContainsAny(trimmed, "{}") || strings.HasPrefix(trimmed, "//") {
			continue
		}
		return line, true
	}
	return "", false
}

// TestIncrementalReplay replays seeded randomized edit sequences on the
// builtin programs, asserting after every edit that the incremental
// recompile is byte-identical to a cold compile — same output on
// success, same error text on failure.
func TestIncrementalReplay(t *testing.T) {
	for _, name := range []string{"spmv", "stencil", "circuit", "miniaero", "pennant"} {
		t.Run(name, func(t *testing.T) {
			src, _, ok := builtins.Source(name)
			if !ok {
				t.Fatalf("unknown builtin %q", name)
			}
			sv := autopart.NewService(autopart.ServiceOptions{})
			rnd := rand.New(rand.NewSource(42))
			for step := 0; step < 10; step++ {
				cold, coldErr := autopart.Compile(src, autopart.Options{})
				inc, incErr := sv.CompileIncremental("replay", src)
				if (coldErr == nil) != (incErr == nil) {
					t.Fatalf("step %d: cold err %v, incremental err %v", step, coldErr, incErr)
				}
				if coldErr != nil {
					if coldErr.Error() != incErr.Error() {
						t.Fatalf("step %d: error mismatch\ncold: %v\nincr: %v", step, coldErr, incErr)
					}
				} else if got, want := renderFull(inc), renderFull(cold); got != want {
					t.Fatalf("step %d: incremental output diverged from cold compile\nsource:\n%s\n--- incremental ---\n%s\n--- cold ---\n%s",
						step, src, got, want)
				}
				src = mutateLoop(t, src, rnd, step)
			}
			st := sv.Stats()
			if st.IncrementalCleanLoops == 0 {
				t.Errorf("replay never reused a loop: %+v", st)
			}
		})
	}
}

// compileBoth compiles src cold and incrementally under key and asserts
// identical rendered output, returning the incremental stats delta.
func compileBoth(t *testing.T, sv *autopart.Service, key, src string) (clean, dirty, cold uint64) {
	t.Helper()
	before := sv.Stats()
	inc, err := sv.CompileIncremental(key, src)
	if err != nil {
		t.Fatalf("incremental compile: %v", err)
	}
	coldC, err := autopart.Compile(src, autopart.Options{})
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if got, want := renderFull(inc), renderFull(coldC); got != want {
		t.Fatalf("incremental output diverged from cold\n--- incremental ---\n%s\n--- cold ---\n%s", got, want)
	}
	after := sv.Stats()
	return after.IncrementalCleanLoops - before.IncrementalCleanLoops,
		after.IncrementalDirtyLoops - before.IncrementalDirtyLoops,
		after.IncrementalCold - before.IncrementalCold
}

const twoLoopSrc = `
region Cells { phi: scalar, rhs: scalar }
region Faces { flux: scalar }
for c in Cells {
  Cells[c].phi = Cells[c].rhs + 1
}
for f in Faces {
  Faces[f].flux = 2
}
`

func TestIncrementalCommentOnlyEditStaysClean(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{})
	compileBoth(t, sv, "k", twoLoopSrc)
	edited := strings.Replace(twoLoopSrc, "phi = Cells[c].rhs + 1",
		"phi = Cells[c].rhs + 1 // tweak comment", 1)
	clean, dirty, cold := compileBoth(t, sv, "k", "// banner\n"+edited)
	if cold != 0 || dirty != 0 || clean != 2 {
		t.Errorf("comment-only edit: clean=%d dirty=%d cold=%d, want 2/0/0", clean, dirty, cold)
	}
}

func TestIncrementalWhitespaceReorderStaysClean(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{})
	compileBoth(t, sv, "k", twoLoopSrc)
	reordered := `
region Cells { phi: scalar, rhs: scalar }
region Faces { flux: scalar }


for f in Faces {
    Faces[f].flux = 2
}
for c in Cells {
      Cells[c].phi = Cells[c].rhs + 1
}
`
	// Loops swapped and reindented: ASTs and IR reuse, but inference
	// reruns (symbol bases moved) so the output still matches a cold
	// compile of the reordered source exactly.
	clean, dirty, cold := compileBoth(t, sv, "k", reordered)
	if cold != 0 || dirty != 0 || clean != 2 {
		t.Errorf("reorder: clean=%d dirty=%d cold=%d, want 2/0/0", clean, dirty, cold)
	}
}

func TestIncrementalRegionRenameInvalidates(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{})
	compileBoth(t, sv, "k", twoLoopSrc)
	// Renaming a region rewrites the header and the loops that mention
	// it; the unedited Faces loop must not be compiled against the stale
	// declaration set. The header fingerprint changes, so the whole
	// retained state is dropped and the compile runs cold — and still
	// matches a fresh compile byte for byte.
	renamed := strings.ReplaceAll(twoLoopSrc, "Cells", "Zones")
	_, _, cold := compileBoth(t, sv, "k", renamed)
	if cold != 1 {
		t.Errorf("region rename should force a cold fallback, got cold=%d", cold)
	}
}

// panicObserver panics during the named pass, simulating a compiler bug
// mid-compile.
type panicObserver struct{ pass string }

func (p panicObserver) OnPassStart(pass string, _ int) {
	if pass == p.pass {
		panic("injected compiler fault")
	}
}
func (p panicObserver) OnPassEnd(autopart.PassEvent) {}

func TestServiceDiscardsPanickedPooledSession(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{MaxConcurrent: 1})
	_, err := sv.CompileWith(twoLoopSrc, autopart.Options{
		Observers: []autopart.Observer{panicObserver{pass: "solve"}},
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	// MaxConcurrent 1 means the next compile would receive the same
	// pooled session if it were returned; it must compile cleanly on a
	// fresh one instead.
	c, err := sv.Compile(twoLoopSrc)
	if err != nil {
		t.Fatalf("compile after panic: %v", err)
	}
	cold, _ := autopart.Compile(twoLoopSrc, autopart.Options{})
	if renderFull(c) != renderFull(cold) {
		t.Error("post-panic pooled compile diverged from cold compile")
	}
	if st := sv.Stats(); st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}
}

func TestServiceDiscardsPanickedIncrementalSession(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{})
	compileBoth(t, sv, "k", twoLoopSrc)
	_, err := sv.CompileIncrementalWith("k", twoLoopSrc, autopart.Options{
		Observers: []autopart.Observer{panicObserver{pass: "infer"}},
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	// The keyed session was discarded with its retained artifacts, so
	// the next compile runs cold — and correct.
	clean, _, cold := compileBoth(t, sv, "k", twoLoopSrc)
	if cold != 1 || clean != 0 {
		t.Errorf("post-panic compile: clean=%d cold=%d, want 0/1", clean, cold)
	}
}
