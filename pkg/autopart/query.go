package autopart

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/pipeline"
	"autopart/internal/runtime"
)

// This file is the structured query facade over compile results: a
// small, uniform way to ask "what did the compiler produce?" without
// parsing rendered text. A result is exposed as named views (program,
// constraints, launches, diagnostics, metrics), each a flat table of
// rows; a Query selects a view, projects fields, filters on exact
// values, and paginates. cmd/apcd serves the same facade over HTTP.

// Observer and PassEvent re-export the pipeline's observation types so
// API users can attach observers and read pass events without naming
// the internal package.
type (
	Observer  = pipeline.Observer
	PassEvent = pipeline.PassEvent
)

// ResultView bundles everything the query facade reads about one
// compile: the result, the display file name for diagnostics, and the
// per-pass events recorded during the run (the metrics view's rows).
type ResultView struct {
	Compiled *Compiled
	File     string
	Passes   []pipeline.PassEvent
}

// PassLog is an Observer that records pass-end events for the metrics
// view. Attach one per compile (Options.Observers) and hand its Events
// to the ResultView.
type PassLog struct {
	Events []pipeline.PassEvent
}

// OnPassStart implements pipeline.Observer.
func (p *PassLog) OnPassStart(string, int) {}

// OnPassEnd implements pipeline.Observer.
func (p *PassLog) OnPassEnd(ev pipeline.PassEvent) { p.Events = append(p.Events, ev) }

// Query selects, shapes, and pages one view of a result.
type Query struct {
	// View names the table: one of Views().
	View string
	// Fields projects a subset of the view's columns, in the given
	// order; empty selects every column. Unknown fields are an error.
	Fields []string
	// Filter keeps only rows whose column (rendered as a string, the
	// same rendering the row itself carries) equals the given value.
	Filter map[string]string
	// Offset/Limit paginate the filtered rows. Limit <= 0 means no
	// limit.
	Offset, Limit int
}

// QueryResult is one page of rows plus enough bookkeeping to fetch the
// next.
type QueryResult struct {
	View string `json:"view"`
	// Total counts rows matching the filter, before pagination.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	// NextOffset is the offset of the following page, or -1 when this
	// page exhausts the result.
	NextOffset int              `json:"next_offset"`
	Fields     []string         `json:"fields"`
	Rows       []map[string]any `json:"rows"`
}

// viewSpec couples a view's column registry with its row builder.
type viewSpec struct {
	fields []string
	rows   func(rv ResultView) []map[string]any
}

var viewSpecs = map[string]viewSpec{
	"program": {
		fields: []string{"index", "symbol", "expr", "private", "text"},
		rows:   programRows,
	},
	"constraints": {
		fields: []string{"index", "scope", "kind", "text"},
		rows:   constraintRows,
	},
	"launches": {
		fields: []string{"index", "name", "iter_sym", "relaxed", "requirements", "text"},
		rows:   launchRows,
	},
	"diagnostics": {
		fields: []string{"index", "severity", "code", "message", "text"},
		rows:   diagnosticRows,
	},
	"metrics": {
		fields: []string{"index", "pass", "wall_us", "metrics"},
		rows:   metricsRows,
	},
}

// Views lists the query views in sorted order.
func Views() []string {
	out := make([]string, 0, len(viewSpecs))
	for name := range viewSpecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ViewFields lists a view's columns.
func ViewFields(view string) ([]string, error) {
	spec, ok := viewSpecs[view]
	if !ok {
		return nil, unknownView(view)
	}
	return append([]string(nil), spec.fields...), nil
}

func unknownView(view string) error {
	return fmt.Errorf("autopart: unknown view %q (have %s)", view, strings.Join(Views(), ", "))
}

// RunQuery evaluates a query against one result.
func RunQuery(rv ResultView, q Query) (*QueryResult, error) {
	spec, ok := viewSpecs[q.View]
	if !ok {
		return nil, unknownView(q.View)
	}
	known := map[string]bool{}
	for _, f := range spec.fields {
		known[f] = true
	}
	fields := q.Fields
	if len(fields) == 0 {
		fields = spec.fields
	}
	for _, f := range fields {
		if !known[f] {
			return nil, fmt.Errorf("autopart: view %q has no field %q (have %s)",
				q.View, f, strings.Join(spec.fields, ", "))
		}
	}
	for f := range q.Filter {
		if !known[f] {
			return nil, fmt.Errorf("autopart: view %q has no filter field %q (have %s)",
				q.View, f, strings.Join(spec.fields, ", "))
		}
	}

	rows := spec.rows(rv)
	if len(q.Filter) > 0 {
		kept := rows[:0:0]
		for _, row := range rows {
			match := true
			for f, want := range q.Filter {
				if fmt.Sprint(row[f]) != want {
					match = false
					break
				}
			}
			if match {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	total := len(rows)
	offset := q.Offset
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	page := rows[offset:]
	if q.Limit > 0 && len(page) > q.Limit {
		page = page[:q.Limit]
	}
	next := -1
	if offset+len(page) < total {
		next = offset + len(page)
	}

	out := make([]map[string]any, len(page))
	for i, row := range page {
		proj := make(map[string]any, len(fields))
		for _, f := range fields {
			proj[f] = row[f]
		}
		out[i] = proj
	}
	return &QueryResult{
		View:       q.View,
		Total:      total,
		Offset:     offset,
		NextOffset: next,
		Fields:     append([]string(nil), fields...),
		Rows:       out,
	}, nil
}

func programRows(rv ResultView) []map[string]any {
	c := rv.Compiled
	if c == nil || c.Solution == nil {
		return nil
	}
	solved := len(c.Solution.Program.Stmts)
	var rows []map[string]any
	for i, st := range c.DPLProgram().Stmts {
		rows = append(rows, map[string]any{
			"index":   i,
			"symbol":  st.Name,
			"expr":    st.Expr.String(),
			"private": i >= solved,
			"text":    st.String(),
		})
	}
	return rows
}

func constraintRows(rv ResultView) []map[string]any {
	c := rv.Compiled
	if c == nil {
		return nil
	}
	var rows []map[string]any
	add := func(scope, kind, text string) {
		rows = append(rows, map[string]any{
			"index": len(rows), "scope": scope, "kind": kind, "text": text,
		})
	}
	for i, p := range c.Plans {
		scope := fmt.Sprintf("loop%d", i)
		for _, pr := range p.Sys.Preds {
			add(scope, pr.Kind.String(), pr.String())
		}
		for _, sub := range p.Sys.Subsets {
			add(scope, "SUBSET", sub.String())
		}
	}
	if c.External != nil {
		for _, pr := range c.External.Preds {
			add("external", pr.Kind.String(), pr.String())
		}
		for _, sub := range c.External.Subsets {
			add("external", "SUBSET", sub.String())
		}
	}
	return rows
}

func launchRows(rv ResultView) []map[string]any {
	c := rv.Compiled
	if c == nil {
		return nil
	}
	var rows []map[string]any
	for i, pl := range c.Parallel {
		name := fmt.Sprintf("loop%d", i)
		l := runtime.FromParallelLoop(name, pl)
		rows = append(rows, map[string]any{
			"index":        i,
			"name":         name,
			"iter_sym":     pl.IterSym,
			"relaxed":      pl.Relaxed,
			"requirements": len(l.Reqs),
			"text":         l.String(),
		})
	}
	return rows
}

func diagnosticRows(rv ResultView) []map[string]any {
	c := rv.Compiled
	if c == nil {
		return nil
	}
	var rows []map[string]any
	for i, d := range c.Diagnostics {
		rows = append(rows, map[string]any{
			"index":    i,
			"severity": d.Severity.String(),
			"code":     d.Code,
			"message":  d.Message,
			"text":     d.Format(rv.File),
		})
	}
	return rows
}

func metricsRows(rv ResultView) []map[string]any {
	var rows []map[string]any
	for i, ev := range rv.Passes {
		rows = append(rows, map[string]any{
			"index":   i,
			"pass":    ev.Pass,
			"wall_us": ev.Wall.Microseconds(),
			"metrics": ev.Metrics,
		})
	}
	return rows
}
