package autopart_test

import (
	"strings"
	"testing"

	"autopart/internal/apps/builtins"
	"autopart/pkg/autopart"
)

// compileView compiles a builtin with a pass log attached and returns
// the facade's input bundle.
func compileView(t *testing.T, name string) autopart.ResultView {
	t.Helper()
	src, file, ok := builtins.Source(name)
	if !ok {
		t.Fatalf("unknown builtin %q", name)
	}
	log := &autopart.PassLog{}
	c, err := autopart.Compile(src, autopart.Options{Observers: []autopart.Observer{log}})
	if err != nil {
		t.Fatal(err)
	}
	return autopart.ResultView{Compiled: c, File: file, Passes: log.Events}
}

func TestQueryProgramView(t *testing.T) {
	rv := compileView(t, "spmv")
	res, err := autopart.RunQuery(rv, autopart.Query{View: "program"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || len(res.Rows) != res.Total {
		t.Fatalf("program view: total=%d rows=%d", res.Total, len(res.Rows))
	}
	if res.NextOffset != -1 {
		t.Errorf("unpaginated query has NextOffset %d, want -1", res.NextOffset)
	}
	row := res.Rows[0]
	if row["symbol"] == "" || row["expr"] == "" {
		t.Errorf("row 0 missing fields: %v", row)
	}
	if !strings.Contains(row["text"].(string), " = ") {
		t.Errorf("text %q is not a DPL statement", row["text"])
	}
}

func TestQueryProjectionAndPagination(t *testing.T) {
	rv := compileView(t, "pennant")
	full, err := autopart.RunQuery(rv, autopart.Query{View: "constraints"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < 3 {
		t.Fatalf("pennant has only %d constraints; test needs a few", full.Total)
	}

	// Page through with limit 2 and a projection; rows must tile the
	// full result exactly.
	var got []map[string]any
	offset := 0
	for {
		page, err := autopart.RunQuery(rv, autopart.Query{
			View: "constraints", Fields: []string{"index", "kind"},
			Offset: offset, Limit: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Rows) > 2 {
			t.Fatalf("limit 2 returned %d rows", len(page.Rows))
		}
		for _, r := range page.Rows {
			if len(r) != 2 {
				t.Fatalf("projection leaked fields: %v", r)
			}
			got = append(got, r)
		}
		if page.NextOffset == -1 {
			break
		}
		if page.NextOffset != offset+len(page.Rows) {
			t.Fatalf("NextOffset %d, want %d", page.NextOffset, offset+len(page.Rows))
		}
		offset = page.NextOffset
	}
	if len(got) != full.Total {
		t.Errorf("pagination visited %d rows, want %d", len(got), full.Total)
	}
}

func TestQueryFilter(t *testing.T) {
	rv := compileView(t, "circuit")
	all, err := autopart.RunQuery(rv, autopart.Query{View: "constraints"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range all.Rows {
		if r["kind"] == "DISJ" {
			want++
		}
	}
	if want == 0 {
		t.Fatal("circuit has no DISJ constraints; filter test needs some")
	}
	res, err := autopart.RunQuery(rv, autopart.Query{
		View: "constraints", Filter: map[string]string{"kind": "DISJ"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != want {
		t.Errorf("filter kind=DISJ: total=%d, want %d", res.Total, want)
	}
	for _, r := range res.Rows {
		if r["kind"] != "DISJ" {
			t.Errorf("filtered row has kind %v", r["kind"])
		}
	}
}

func TestQueryMetricsView(t *testing.T) {
	rv := compileView(t, "stencil")
	res, err := autopart.RunQuery(rv, autopart.Query{
		View: "metrics", Filter: map[string]string{"pass": "solve"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1 {
		t.Fatalf("metrics filtered to solve: total=%d, want 1", res.Total)
	}
	m, ok := res.Rows[0]["metrics"].(map[string]int)
	if !ok {
		t.Fatalf("metrics field has type %T", res.Rows[0]["metrics"])
	}
	if m["partitions"] == 0 {
		t.Error("solve pass metrics report zero partitions")
	}
}

func TestQueryLaunchesView(t *testing.T) {
	rv := compileView(t, "spmv")
	res, err := autopart.RunQuery(rv, autopart.Query{View: "launches"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("spmv compiled to zero launches")
	}
	row := res.Rows[0]
	if row["iter_sym"] == "" || row["requirements"].(int) == 0 {
		t.Errorf("launch row incomplete: %v", row)
	}
	if !strings.HasPrefix(row["text"].(string), "launch ") {
		t.Errorf("launch text %q", row["text"])
	}
}

func TestQueryErrors(t *testing.T) {
	rv := compileView(t, "spmv")
	if _, err := autopart.RunQuery(rv, autopart.Query{View: "nope"}); err == nil {
		t.Error("unknown view accepted")
	}
	if _, err := autopart.RunQuery(rv, autopart.Query{View: "program", Fields: []string{"bogus"}}); err == nil {
		t.Error("unknown projection field accepted")
	}
	if _, err := autopart.RunQuery(rv, autopart.Query{View: "program", Filter: map[string]string{"bogus": "x"}}); err == nil {
		t.Error("unknown filter field accepted")
	}
}

func TestViewsRegistry(t *testing.T) {
	views := autopart.Views()
	for _, want := range []string{"program", "constraints", "launches", "diagnostics", "metrics"} {
		found := false
		for _, v := range views {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Views() lacks %q: %v", want, views)
		}
	}
	fields, err := autopart.ViewFields("launches")
	if err != nil || len(fields) == 0 {
		t.Errorf("ViewFields(launches) = %v, %v", fields, err)
	}
	if _, err := autopart.ViewFields("nope"); err == nil {
		t.Error("ViewFields accepted unknown view")
	}
}
