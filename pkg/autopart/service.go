package autopart

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"autopart/internal/dpl"
	"autopart/internal/pipeline"
	"autopart/internal/solver"
)

// ServiceOptions configure a compile service.
type ServiceOptions struct {
	// MaxConcurrent bounds the number of compiles executing at once;
	// excess requests queue. Non-positive selects GOMAXPROCS.
	MaxConcurrent int
	// MemoCacheCap is the per-generation capacity of the shared solver
	// memo cache (entries); non-positive selects
	// solver.DefaultMemoCacheCap. The cache holds at most ~2× this many
	// entries.
	MemoCacheCap int
	// InternMaxEntries, when positive, bounds the process-wide dpl intern
	// table: once it grows past the bound, it is rebuilt between compiles
	// (never during one — compiles hold epochs). Zero leaves the table
	// unbounded, the behavior of one-shot Compile.
	InternMaxEntries int
	// Base are the per-compile options applied when Compile is used;
	// CompileWith overrides them per request. Base.Trace == nil consults
	// AUTOPART_TRACE once, at construction time, not per compile.
	Base Options
}

// Service is a concurrency-safe compile-as-a-service front end: it
// pools pipeline Sessions across requests, shares one solver memo cache
// across every compile it runs (so recompiles of similar programs reuse
// solvability, closed-conjunct, and refuted-subtree verdicts), bounds
// in-flight compiles, and keeps the shared intern table inside a memory
// budget via epoch-based reclamation. Results are byte-identical to
// one-shot Compile — the cache stores verdicts a fresh solver would
// recompute, never approximations.
type Service struct {
	base     Options
	cache    *solver.MemoCache
	table    *dpl.Table
	sem      chan struct{}
	sessions sync.Pool

	compiles atomic.Uint64
	failures atomic.Uint64
}

// NewService constructs a compile service. The AUTOPART_TRACE
// environment knob is resolved here, once: compiles through the service
// never read the environment.
func NewService(opts ServiceOptions) *Service {
	conc := opts.MaxConcurrent
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	base := opts.Base
	if base.Trace == nil && traceEnvEnabled() {
		base.Trace = os.Stderr
	}
	sv := &Service{
		base:  base,
		cache: solver.NewMemoCache(opts.MemoCacheCap),
		table: dpl.Default(),
		sem:   make(chan struct{}, conc),
	}
	sv.sessions.New = func() any { return &pipeline.Session{} }
	if opts.InternMaxEntries > 0 {
		sv.table.SetMaxEntries(opts.InternMaxEntries)
	}
	return sv
}

// Compile compiles source text with the service's base options.
func (sv *Service) Compile(src string) (*Compiled, error) {
	return sv.CompileWith(src, sv.base)
}

// CompileWith compiles source text with per-request options. A nil
// opts.Trace inherits the service's trace writer; concurrent compiles
// tracing to one writer emit whole, never interleaved, JSON lines.
func (sv *Service) CompileWith(src string, opts Options) (*Compiled, error) {
	if opts.Trace == nil {
		opts.Trace = sv.base.Trace
	}
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()

	// Pin the intern table's current generation: ids handed out during
	// this compile stay coherent until Leave, even if the table is over
	// its bound.
	ep := sv.table.Enter()
	defer ep.Leave()

	s := sv.sessions.Get().(*pipeline.Session)
	s.Reset(src, pipeline.Config{
		DisableRelaxation:           opts.DisableRelaxation,
		DisablePrivateSubPartitions: opts.DisablePrivateSubPartitions,
		SolverCache:                 sv.cache,
	})
	c, s, err := runSession(s, opts)
	sv.sessions.Put(s)
	if err != nil {
		sv.failures.Add(1)
		return nil, err
	}
	sv.compiles.Add(1)
	return c, nil
}

// ServiceStats is a point-in-time snapshot of service activity.
type ServiceStats struct {
	// Compiles and Failures count completed requests since construction.
	Compiles, Failures uint64
	// InFlight is the number of compiles currently executing.
	InFlight int
	// MaxConcurrent is the configured concurrency bound.
	MaxConcurrent int
	// Memo snapshots the shared solver memo cache.
	Memo solver.MemoCacheStats
	// InternEntries is the shared intern table's live entry count;
	// InternGeneration and InternReclaims count rebuilds (an id is only
	// meaningful within one generation).
	InternEntries    int
	InternGeneration uint64
	InternReclaims   uint64
}

// Stats snapshots the service counters, the shared memo cache, and the
// intern table.
func (sv *Service) Stats() ServiceStats {
	return ServiceStats{
		Compiles:         sv.compiles.Load(),
		Failures:         sv.failures.Load(),
		InFlight:         len(sv.sem),
		MaxConcurrent:    cap(sv.sem),
		Memo:             sv.cache.Stats(),
		InternEntries:    sv.table.Entries(),
		InternGeneration: sv.table.Generation(),
		InternReclaims:   sv.table.Reclaims(),
	}
}

// MemoCache exposes the shared solver cache (for benchmarks that
// pre-warm or inspect it).
func (sv *Service) MemoCache() *solver.MemoCache { return sv.cache }
