package autopart

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"autopart/internal/dpl"
	"autopart/internal/pipeline"
	"autopart/internal/solver"
)

// ServiceOptions configure a compile service.
type ServiceOptions struct {
	// MaxConcurrent bounds the number of compiles executing at once;
	// excess requests queue. Non-positive selects GOMAXPROCS.
	MaxConcurrent int
	// MemoCacheCap is the per-generation capacity of the shared solver
	// memo cache (entries); non-positive selects
	// solver.DefaultMemoCacheCap. The cache holds at most ~2× this many
	// entries.
	MemoCacheCap int
	// InternMaxEntries, when positive, bounds the process-wide dpl intern
	// table: once it grows past the bound, it is rebuilt between compiles
	// (never during one — compiles hold epochs). Zero leaves the table
	// unbounded, the behavior of one-shot Compile.
	InternMaxEntries int
	// MaxIncrementalSessions bounds the number of keyed incremental
	// sessions (CompileIncremental) retained at once; the least recently
	// used key is evicted past the bound. Non-positive selects 64.
	MaxIncrementalSessions int
	// Base are the per-compile options applied when Compile is used;
	// CompileWith overrides them per request. Base.Trace == nil consults
	// AUTOPART_TRACE once, at construction time, not per compile.
	Base Options
}

// Service is a concurrency-safe compile-as-a-service front end: it
// pools pipeline Sessions across requests, shares one solver memo cache
// across every compile it runs (so recompiles of similar programs reuse
// solvability, closed-conjunct, and refuted-subtree verdicts), bounds
// in-flight compiles, and keeps the shared intern table inside a memory
// budget via epoch-based reclamation. Results are byte-identical to
// one-shot Compile — the cache stores verdicts a fresh solver would
// recompute, never approximations.
type Service struct {
	base     Options
	cache    *solver.MemoCache
	table    *dpl.Table
	sem      chan struct{}
	sessions sync.Pool

	compiles atomic.Uint64
	failures atomic.Uint64

	// Keyed incremental sessions: each key identifies one evolving
	// program, and its session retains the previous compile's front-half
	// artifacts so edits skip the clean loops' parse/check/normalize/
	// infer work entirely.
	incrMu       sync.Mutex
	incrSessions map[string]*keyedSession
	incrTick     uint64
	incrMax      int

	incrCompiles atomic.Uint64
	incrCold     atomic.Uint64
	incrClean    atomic.Uint64
	incrDirty    atomic.Uint64
}

// keyedSession serializes compiles for one incremental key. The mutex
// is held for the whole compile: two concurrent recompiles of the same
// key must not share a Session mid-flight.
type keyedSession struct {
	mu   sync.Mutex
	s    *pipeline.Session
	tick uint64 // last-use order under Service.incrMu, for LRU eviction
}

// NewService constructs a compile service. The AUTOPART_TRACE
// environment knob is resolved here, once: compiles through the service
// never read the environment.
func NewService(opts ServiceOptions) *Service {
	conc := opts.MaxConcurrent
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	base := opts.Base
	if base.Trace == nil && traceEnvEnabled() {
		base.Trace = os.Stderr
	}
	sv := &Service{
		base:  base,
		cache: solver.NewMemoCache(opts.MemoCacheCap),
		table: dpl.Default(),
		sem:   make(chan struct{}, conc),
	}
	sv.sessions.New = func() any { return &pipeline.Session{} }
	if opts.InternMaxEntries > 0 {
		sv.table.SetMaxEntries(opts.InternMaxEntries)
	}
	sv.incrMax = opts.MaxIncrementalSessions
	if sv.incrMax <= 0 {
		sv.incrMax = 64
	}
	return sv
}

// Compile compiles source text with the service's base options.
func (sv *Service) Compile(src string) (*Compiled, error) {
	return sv.CompileWith(src, sv.base)
}

// CompileWith compiles source text with per-request options. A nil
// opts.Trace inherits the service's trace writer; concurrent compiles
// tracing to one writer emit whole, never interleaved, JSON lines.
func (sv *Service) CompileWith(src string, opts Options) (*Compiled, error) {
	if opts.Trace == nil {
		opts.Trace = sv.base.Trace
	}
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()

	// Pin the intern table's current generation: ids handed out during
	// this compile stay coherent until Leave, even if the table is over
	// its bound.
	ep := sv.table.Enter()
	defer ep.Leave()

	s := sv.sessions.Get().(*pipeline.Session)
	s.Reset(src, pipeline.Config{
		DisableRelaxation:           opts.DisableRelaxation,
		DisablePrivateSubPartitions: opts.DisablePrivateSubPartitions,
		SolverCache:                 sv.cache,
	})
	c, panicked, err := runSessionGuarded(s, opts)
	if !panicked {
		// A panicked session's artifacts are in an unknown state; it must
		// never re-enter the pool, or a later request would compile on
		// top of them. Dropping it lets the pool mint a fresh one.
		sv.sessions.Put(s)
	}
	if err != nil {
		sv.failures.Add(1)
		return nil, err
	}
	sv.compiles.Add(1)
	return c, nil
}

// CompileIncremental compiles source under a caller-chosen key with the
// service's base options, reusing the front-half artifacts retained
// from the previous compile of the same key for every unedited loop.
// Output is byte-identical to Compile on the same source; only the work
// performed differs. Unrelated sources under one key are safe (the diff
// falls back to a cold compile) but waste the retained state.
func (sv *Service) CompileIncremental(key, src string) (*Compiled, error) {
	return sv.CompileIncrementalWith(key, src, sv.base)
}

// CompileIncrementalWith is CompileIncremental with per-request
// options. Changing semantic options between compiles of one key is
// safe: the retained state records the options it was built under and a
// mismatch recompiles cold.
func (sv *Service) CompileIncrementalWith(key, src string, opts Options) (*Compiled, error) {
	if opts.Trace == nil {
		opts.Trace = sv.base.Trace
	}
	ks := sv.keyedSession(key)
	// Hold the key's lock for the whole compile, then the global
	// concurrency slot. Slot holders never wait on a key they do not
	// already hold, so the ordering cannot deadlock.
	ks.mu.Lock()
	defer ks.mu.Unlock()
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()

	ep := sv.table.Enter()
	defer ep.Leave()

	s := ks.s
	s.Reset(src, pipeline.Config{
		DisableRelaxation:           opts.DisableRelaxation,
		DisablePrivateSubPartitions: opts.DisablePrivateSubPartitions,
		SolverCache:                 sv.cache,
		Incremental:                 true,
	})
	c, panicked, err := runSessionGuarded(s, opts)
	if panicked {
		// Discard the poisoned session, retained artifacts and all; the
		// key's next compile starts clean.
		ks.s = &pipeline.Session{}
	}
	if err != nil {
		sv.failures.Add(1)
		return nil, err
	}
	sv.compiles.Add(1)
	sv.incrCompiles.Add(1)
	m := s.Metrics()
	sv.incrCold.Add(uint64(m["incr_cold"]))
	sv.incrClean.Add(uint64(m["incr_clean_loops"]))
	sv.incrDirty.Add(uint64(m["incr_dirty_loops"]))
	return c, nil
}

// keyedSession finds or creates the session slot for an incremental
// key, evicting the least recently used slot past the bound.
func (sv *Service) keyedSession(key string) *keyedSession {
	sv.incrMu.Lock()
	defer sv.incrMu.Unlock()
	if sv.incrSessions == nil {
		sv.incrSessions = make(map[string]*keyedSession)
	}
	ks, ok := sv.incrSessions[key]
	if !ok {
		if len(sv.incrSessions) >= sv.incrMax {
			var lruKey string
			var lruTick uint64
			first := true
			for k, v := range sv.incrSessions {
				if first || v.tick < lruTick {
					lruKey, lruTick, first = k, v.tick, false
				}
			}
			// An evicted slot that is mid-compile finishes on its own
			// session; only the map entry goes away.
			delete(sv.incrSessions, lruKey)
		}
		ks = &keyedSession{s: &pipeline.Session{}}
		sv.incrSessions[key] = ks
	}
	sv.incrTick++
	ks.tick = sv.incrTick
	return ks
}

// runSessionGuarded runs the pipeline, converting a pass panic into an
// error. The boolean tells the caller the session is poisoned and must
// be discarded rather than pooled or retained.
func runSessionGuarded(s *pipeline.Session, opts Options) (c *Compiled, panicked bool, err error) {
	done := false
	defer func() {
		if done {
			return
		}
		panicked = true
		c, err = nil, fmt.Errorf("autopart: internal error: compile panicked: %v", recover())
	}()
	c, _, err = runSession(s, opts)
	done = true
	return c, false, err
}

// ServiceStats is a point-in-time snapshot of service activity.
type ServiceStats struct {
	// Compiles and Failures count completed requests since construction.
	Compiles, Failures uint64
	// InFlight is the number of compiles currently executing.
	InFlight int
	// MaxConcurrent is the configured concurrency bound.
	MaxConcurrent int
	// Memo snapshots the shared solver memo cache.
	Memo solver.MemoCacheStats
	// InternEntries is the shared intern table's live entry count;
	// InternGeneration and InternReclaims count rebuilds (an id is only
	// meaningful within one generation).
	InternEntries    int
	InternGeneration uint64
	InternReclaims   uint64
	// IncrementalCompiles counts successful CompileIncremental requests;
	// IncrementalCold counts those that fell back to a full cold
	// frontend. IncrementalCleanLoops and IncrementalDirtyLoops total
	// the loops reused versus re-run across all incremental compiles.
	// IncrementalSessions is the number of keyed sessions currently
	// retained.
	IncrementalCompiles   uint64
	IncrementalCold       uint64
	IncrementalCleanLoops uint64
	IncrementalDirtyLoops uint64
	IncrementalSessions   int
}

// Stats snapshots the service counters, the shared memo cache, and the
// intern table.
func (sv *Service) Stats() ServiceStats {
	sv.incrMu.Lock()
	incrSessions := len(sv.incrSessions)
	sv.incrMu.Unlock()
	return ServiceStats{
		Compiles:              sv.compiles.Load(),
		Failures:              sv.failures.Load(),
		InFlight:              len(sv.sem),
		MaxConcurrent:         cap(sv.sem),
		Memo:                  sv.cache.Stats(),
		InternEntries:         sv.table.Entries(),
		InternGeneration:      sv.table.Generation(),
		InternReclaims:        sv.table.Reclaims(),
		IncrementalCompiles:   sv.incrCompiles.Load(),
		IncrementalCold:       sv.incrCold.Load(),
		IncrementalCleanLoops: sv.incrClean.Load(),
		IncrementalDirtyLoops: sv.incrDirty.Load(),
		IncrementalSessions:   incrSessions,
	}
}

// MemoCache exposes the shared solver cache (for benchmarks that
// pre-warm or inspect it).
func (sv *Service) MemoCache() *solver.MemoCache { return sv.cache }
