package autopart_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"autopart/internal/apps/builtins"
	"autopart/internal/dpl"
	"autopart/internal/runtime"
	"autopart/pkg/autopart"
)

// renderCompiled flattens everything observable about a compile into a
// deterministic string: the full DPL program (including §5.2 private
// statements), every launch's region requirements, and the external
// symbol list. Two compiles are considered identical iff these bytes
// are.
func renderCompiled(c *autopart.Compiled) string {
	var sb strings.Builder
	sb.WriteString(c.DPLProgram().String())
	sb.WriteByte('\n')
	for i, pl := range c.Parallel {
		sb.WriteString(runtime.FromParallelLoop(fmt.Sprintf("loop%d", i), pl).String())
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Join(c.ExternalSyms, ","))
	return sb.String()
}

// sequentialBaselines compiles every builtin with the one-shot Compile
// entry point (private caches, no service) and renders each result.
func sequentialBaselines(t *testing.T) map[string]string {
	t.Helper()
	golden := map[string]string{}
	for _, name := range builtins.Names() {
		src, _, _ := builtins.Source(name)
		c, err := autopart.Compile(src, autopart.Options{})
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		golden[name] = renderCompiled(c)
	}
	return golden
}

// TestServiceConcurrentByteIdentical is the service's core contract: N
// goroutines compiling the five builtin benchmarks concurrently through
// one shared Service (shared memo cache, pooled sessions, epoch-pinned
// intern table) produce results byte-identical to one-shot sequential
// compiles, and warm recompiles answer >90% of solver verdict lookups
// from the shared cache.
func TestServiceConcurrentByteIdentical(t *testing.T) {
	golden := sequentialBaselines(t)
	names := builtins.Names()

	sv := autopart.NewService(autopart.ServiceOptions{MaxConcurrent: 4})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(names))
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range names {
				// Rotate the order per goroutine so different programs
				// genuinely interleave.
				name := names[(i+g)%len(names)]
				src, _, _ := builtins.Source(name)
				c, err := sv.Compile(src)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", name, err)
					return
				}
				if got := renderCompiled(c); got != golden[name] {
					errs <- fmt.Errorf("%s: concurrent service output diverges from sequential baseline\ngot:\n%s\nwant:\n%s", name, got, golden[name])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := sv.Stats()
	if st.Compiles != goroutines*uint64(len(names)) {
		t.Errorf("Compiles = %d, want %d", st.Compiles, goroutines*len(names))
	}
	if st.Failures != 0 {
		t.Errorf("Failures = %d, want 0", st.Failures)
	}

	// Warm recompiles: verdict lookups must come from the shared cache.
	before := st.Memo
	for _, name := range names {
		src, _, _ := builtins.Source(name)
		if _, err := sv.Compile(src); err != nil {
			t.Fatalf("warm %s: %v", name, err)
		}
	}
	after := sv.Stats().Memo
	if after.Hits <= before.Hits {
		t.Errorf("warm recompiles did not increase memo hits (%d -> %d)", before.Hits, after.Hits)
	}
	dh, dm := after.Hits-before.Hits, after.Misses-before.Misses
	if rate := float64(dh) / float64(dh+dm); rate <= 0.9 {
		t.Errorf("warm verdict hit rate = %.3f (hits %d, misses %d), want > 0.9", rate, dh, dm)
	}
}

// TestServiceInternBound exercises epoch-based reclamation end to end:
// a service with a tiny intern budget must rebuild the shared table
// between compiles (never during one) and still produce baseline
// results afterwards.
func TestServiceInternBound(t *testing.T) {
	golden := sequentialBaselines(t)
	sv := autopart.NewService(autopart.ServiceOptions{
		MaxConcurrent:    2,
		InternMaxEntries: 64, // far below one benchmark's working set
	})
	defer dpl.Default().SetMaxEntries(0) // unbind the process-wide table for later tests

	for round := 0; round < 2; round++ {
		for _, name := range builtins.Names() {
			src, _, _ := builtins.Source(name)
			c, err := sv.Compile(src)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			if got := renderCompiled(c); got != golden[name] {
				t.Fatalf("round %d %s: output diverges under intern reclamation", round, name)
			}
		}
	}
	st := sv.Stats()
	if st.InternReclaims == 0 {
		t.Error("intern table never reclaimed despite a 64-entry budget")
	}
	if st.InternEntries > 0 && st.InternGeneration == 0 {
		t.Error("table over budget but generation never advanced")
	}
}

// TestServiceResultsSurviveReclamation pins that a Compiled returned by
// the service stays renderable after the table it was compiled against
// has been rebuilt (results hold structural expressions, not table
// ids).
func TestServiceResultsSurviveReclamation(t *testing.T) {
	sv := autopart.NewService(autopart.ServiceOptions{InternMaxEntries: 16})
	defer dpl.Default().SetMaxEntries(0)

	src, _, _ := builtins.Source("spmv")
	c, err := sv.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	first := renderCompiled(c)
	// Force generations forward.
	for i := 0; i < 3; i++ {
		if _, err := sv.Compile(src); err != nil {
			t.Fatal(err)
		}
	}
	if renderCompiled(c) != first {
		t.Error("held result changed rendering after intern reclamation")
	}
}
